//! Ablation: minimum chunk size for InvisiFence-Continuous (the paper uses
//! ~100 instructions).

use ifence_bench::{paper_params, print_header, sweep};
use ifence_stats::ColumnTable;
use ifence_types::{CycleClass, EngineKind};
use ifence_workloads::presets;

fn main() {
    let params = paper_params();
    let _run =
        print_header("Ablation", "Minimum chunk size sweep for InvisiFence-Continuous", &params);
    let workload = presets::barnes();
    let mut table =
        ColumnTable::new(["min chunk (instr)", "cycles", "Violation cycles", "chunks committed"]);
    let chunks = [25usize, 50, 100, 200, 400];
    let rows = sweep::parallel_map(&chunks, params.effective_jobs(), |_, &chunk| {
        let mut cfg = ifence_types::MachineConfig::with_engine(EngineKind::InvisiContinuous {
            commit_on_violate: false,
        });
        cfg.speculation.min_chunk_instructions = chunk;
        cfg.seed = params.seed;
        let programs = workload.generate(cfg.cores, params.instructions_per_core, params.seed);
        let mut machine = ifence_sim::Machine::new(cfg, programs).expect("valid config");
        let result = machine.run(params.max_cycles);
        let summary = result.summary(workload.name.clone());
        [
            chunk.to_string(),
            summary.cycles.to_string(),
            summary.breakdown.get(CycleClass::Violation).to_string(),
            summary.counters.speculations_committed.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    println!("{table}");
}
