//! Ablation: wall-clock cost of the structured trace layer — off (the
//! default), and on with the full event vocabulary collecting into the
//! per-shard rings.
//!
//! The always-on histograms are part of the baseline by design (they are in
//! every run's `RunSummary`), so this bench isolates exactly what the
//! `trace` flag adds: the per-event branch in every `TraceSink::emit` call
//! site when off, and ring pushes plus the final merge/export when on.
//! Simulated results are byte-identical either way (asserted here and in
//! `tests/trace_equivalence.rs`); only the wall clock may differ, and the
//! "off" column is the one the kernel is held to — tracing disabled must
//! cost no more than a branch per instrumented site.
//!
//! Each mode appends its own `BENCH_results.json` row (detail "tracing off" /
//! "tracing on"), so the perf trajectory tracks the overhead across
//! invocations.

use ifence_bench::{paper_params, print_header, BenchRun};
use ifence_stats::ColumnTable;
use ifence_types::{ConsistencyModel, EngineKind, MachineConfig};
use ifence_workloads::presets;
use std::time::Instant;

/// Repetitions per cell (minimum taken): wall-clock comparisons on a shared
/// machine need more than one sample per point.
fn reps() -> usize {
    std::env::var("IFENCE_BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1)
}

#[derive(Clone)]
struct Measured {
    cycles: u64,
    best_ms: f64,
    events: usize,
}

fn timed_run(
    engine: EngineKind,
    trace: bool,
    params: &ifence_sim::ExperimentParams,
    workload: &ifence_workloads::WorkloadSpec,
) -> Measured {
    let mut measured = Measured { cycles: 0, best_ms: f64::INFINITY, events: 0 };
    for rep in 0..reps() {
        let mut cfg = MachineConfig::with_engine(engine);
        cfg.seed = params.seed;
        cfg.trace = trace;
        let programs = workload.generate(cfg.cores, params.instructions_per_core, params.seed);
        let machine = ifence_sim::Machine::new(cfg, programs).expect("valid config");
        let start = Instant::now();
        let (result, stream) = machine.into_result_with_trace(params.max_cycles);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(result.finished, "{}: run did not finish", engine.label());
        if rep == 0 {
            measured.cycles = result.cycles;
            measured.events = stream.events.len();
        } else {
            assert_eq!(
                measured.cycles,
                result.cycles,
                "{}: cycles differ across reps",
                engine.label()
            );
        }
        measured.best_ms = measured.best_ms.min(elapsed);
    }
    measured
}

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Ablation",
        "trace overhead: structured event collection on vs off (results byte-identical)",
        &params,
    );
    let workload = presets::apache();
    let engines = [
        EngineKind::Conventional(ConsistencyModel::Sc),
        EngineKind::InvisiSelective(ConsistencyModel::Sc),
        EngineKind::InvisiContinuous { commit_on_violate: true },
    ];
    // Timed serially (never through the parallel sweep): concurrent cells
    // would contend for cores and corrupt the wall-clock comparison. Mode by
    // mode, so each mode's trajectory row times exactly its own runs.
    let mut measured = vec![Vec::new(); engines.len()];
    for (trace, detail) in [(false, "tracing off"), (true, "tracing on")] {
        let _mode_run = BenchRun::start("ablation_trace_overhead", detail, &params);
        for (i, engine) in engines.iter().enumerate() {
            measured[i].push(timed_run(*engine, trace, &params, &workload));
        }
    }
    let mut table =
        ColumnTable::new(["engine", "cycles", "events", "off ms", "on ms", "on vs off"]);
    for (engine, runs) in engines.iter().zip(&measured) {
        let [off, on] = &runs[..] else {
            unreachable!("two modes per engine");
        };
        assert_eq!(
            off.cycles,
            on.cycles,
            "{}: tracing changed the simulated cycle count",
            engine.label()
        );
        assert_eq!(off.events, 0, "{}: untraced run collected events", engine.label());
        assert!(on.events > 0, "{}: traced run collected nothing", engine.label());
        table.push_row([
            engine.label(),
            off.cycles.to_string(),
            on.events.to_string(),
            format!("{:.1}", off.best_ms),
            format!("{:.1}", on.best_ms),
            format!("{:.2}x", on.best_ms / off.best_ms.max(1e-9)),
        ]);
    }
    println!("{table}");
    println!(
        "(simulated results are byte-identical traced or not — the flag only toggles event \
         collection; \"off\" is the default every figure and sweep runs under)"
    );
}
