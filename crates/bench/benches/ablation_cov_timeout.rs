//! Ablation: commit-on-violate deferral timeout (the paper evaluates 4000
//! cycles; this sweep shows how the choice trades violations against delay).

use ifence_bench::{paper_params, print_header, sweep};
use ifence_stats::ColumnTable;
use ifence_types::{CycleClass, EngineKind};
use ifence_workloads::presets;

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Ablation",
        "Commit-on-violate timeout sweep for InvisiFence-Continuous",
        &params,
    );
    let workload = presets::zeus();
    let mut table = ColumnTable::new([
        "CoV timeout (cycles)",
        "cycles",
        "Violation cycles",
        "CoV commits",
        "CoV timeouts",
    ]);
    let timeouts = [0u64, 500, 4000, 16000];
    let rows = sweep::parallel_map(&timeouts, params.effective_jobs(), |_, &timeout| {
        let mut cfg = ifence_types::MachineConfig::with_engine(EngineKind::InvisiContinuous {
            commit_on_violate: timeout > 0,
        });
        cfg.speculation.cov_timeout = timeout.max(1);
        cfg.seed = params.seed;
        let programs = workload.generate(cfg.cores, params.instructions_per_core, params.seed);
        let mut machine = ifence_sim::Machine::new(cfg, programs).expect("valid config");
        let result = machine.run(params.max_cycles);
        let summary = result.summary(workload.name.clone());
        [
            timeout.to_string(),
            summary.cycles.to_string(),
            summary.breakdown.get(CycleClass::Violation).to_string(),
            summary.counters.cov_commits.to_string(),
            summary.counters.cov_timeouts.to_string(),
        ]
    });
    for row in rows {
        table.push_row(row);
    }
    println!("{table}");
}
