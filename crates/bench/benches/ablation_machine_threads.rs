//! Ablation: wall-clock scaling of the deterministic epoch-parallel machine
//! kernel — one simulated machine's cores partitioned across 1/2/4/8 worker
//! threads, with all other knobs fixed.
//!
//! Every thread count simulates the identical machine and produces
//! byte-identical results (asserted here and in
//! `tests/kernel_equivalence.rs`); only the wall-clock time differs. The
//! speedup ceiling is set by the epoch length the coherence fabric can
//! prove interaction-free (`next_interaction_bound`): paper-scale latencies
//! (8-cycle directory occupancy, 100-cycle torus hops) give each worker
//! hundreds of core-cycles of independent work per barrier crossing, so the
//! kernel scales until the host runs out of hardware threads — on a
//! single-hardware-thread host the extra workers only add barrier overhead
//! and every ratio flattens to ≤1, which is expected and honest.
//!
//! Each thread count appends its own `BENCH_results.json` row (detail
//! "1 thread" / "2 threads" / …, plus a structured `machine_threads` field
//! so consumers can filter numerically), so the scaling trajectory is
//! tracked per count across invocations. `IFENCE_THREADS` overrides the config at
//! machine construction and would collapse all counts into one — the bench
//! refuses to run under it rather than record meaningless ratios.

use ifence_bench::{paper_params, print_header, BenchRun};
use ifence_stats::ColumnTable;
use ifence_types::{ConsistencyModel, EngineKind, MachineConfig};
use ifence_workloads::presets;
use std::time::Instant;

/// Repetitions per cell (minimum taken): wall-clock comparisons on a shared
/// machine need more than one sample per point.
fn reps() -> usize {
    std::env::var("IFENCE_BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1)
}

fn timed_run(
    engine: EngineKind,
    threads: usize,
    params: &ifence_sim::ExperimentParams,
    workload: &ifence_workloads::WorkloadSpec,
) -> (u64, f64) {
    let mut cycles = 0;
    let mut best = f64::INFINITY;
    for rep in 0..reps() {
        let mut cfg = MachineConfig::with_engine(engine);
        cfg.seed = params.seed;
        cfg.machine_threads = threads;
        // Leap execution off: these rows track pure epoch-parallel scaling of
        // the batched kernel, and must keep measuring the same thing now that
        // leaping defaults on (the leap ablations live in
        // ablation_kernel_mode / ablation_fabric_path).
        cfg.leap_kernel = false;
        let programs = workload.generate(cfg.cores, params.instructions_per_core, params.seed);
        let machine = ifence_sim::Machine::new(cfg, programs).expect("valid config");
        let start = Instant::now();
        let result = machine.into_result(params.max_cycles);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        assert!(result.finished, "{}: run did not finish", engine.label());
        if rep == 0 {
            cycles = result.cycles;
        } else {
            assert_eq!(cycles, result.cycles, "{}: cycles differ across reps", engine.label());
        }
        best = best.min(elapsed);
    }
    (cycles, best)
}

fn main() {
    if std::env::var("IFENCE_THREADS").is_ok() {
        eprintln!(
            "ablation_machine_threads: IFENCE_THREADS is set, which overrides every \
             configured thread count and would collapse the ablation into one point; \
             unset it and re-run."
        );
        return;
    }
    let params = paper_params();
    let _run = print_header(
        "Ablation",
        "epoch-parallel machine kernel: intra-machine worker threads 1/2/4/8",
        &params,
    );
    let host = ifence_sim::available_jobs();
    let workload = presets::apache();
    let engines = [
        EngineKind::Conventional(ConsistencyModel::Sc),
        EngineKind::InvisiSelective(ConsistencyModel::Sc),
    ];
    let thread_counts = [1usize, 2, 4, 8];
    // Timed serially (never through the parallel sweep): concurrent cells
    // would contend for cores and corrupt the wall-clock comparison. Count
    // by count, so each count's trajectory row times exactly its own runs.
    let mut measured = vec![Vec::new(); engines.len()];
    for &threads in &thread_counts {
        let detail = format!("{threads} thread{}", if threads == 1 { "" } else { "s" });
        let _count_run = BenchRun::start("ablation_machine_threads", &detail, &params)
            .with_u64("machine_threads", threads as u64);
        for (i, engine) in engines.iter().enumerate() {
            measured[i].push(timed_run(*engine, threads, &params, &workload));
        }
    }
    let mut table = ColumnTable::new([
        "engine", "cycles", "1T ms", "2T ms", "4T ms", "8T ms", "2T vs 1T", "4T vs 1T", "8T vs 1T",
    ]);
    for (engine, runs) in engines.iter().zip(&measured) {
        let [(serial_cycles, serial_ms), (_, t2_ms), (_, t4_ms), (_, t8_ms)] = runs[..] else {
            unreachable!("four thread counts per engine");
        };
        for (threads, &(cycles, _)) in thread_counts.iter().zip(&runs[..]) {
            assert_eq!(
                serial_cycles,
                cycles,
                "{}: {threads}-thread kernel disagrees on simulated cycles",
                engine.label()
            );
        }
        table.push_row([
            engine.label(),
            serial_cycles.to_string(),
            format!("{serial_ms:.1}"),
            format!("{t2_ms:.1}"),
            format!("{t4_ms:.1}"),
            format!("{t8_ms:.1}"),
            format!("{:.2}x", serial_ms / t2_ms.max(1e-9)),
            format!("{:.2}x", serial_ms / t4_ms.max(1e-9)),
            format!("{:.2}x", serial_ms / t8_ms.max(1e-9)),
        ]);
    }
    println!("{table}");
    println!(
        "(speedups are wall-clock ratios against the 1-thread serial kernel; simulated results \
         are byte-identical at every thread count — this host exposes {host} hardware \
         thread{}, so counts beyond that only measure barrier overhead)",
        if host == 1 { "" } else { "s" }
    );
}
