//! Criterion microbenchmarks of the paper's hardware structures: the
//! flash-clearable speculative bits (Figure 3's functional contract), the
//! coalescing store buffer, the L1 tag array, and the directory.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ifence_coherence::Directory;
use ifence_mem::{BlockData, LineState, SetAssocCache, SpecBitArray, StoreBuffer};
use ifence_types::{Addr, BlockAddr, CacheConfig, CoreId};

fn blk(i: u64) -> BlockAddr {
    BlockAddr::containing(Addr::new(i * 64), 64)
}

fn bench_spec_bits(c: &mut Criterion) {
    let mut group = c.benchmark_group("spec_bits");
    group.bench_function("set_1024", |b| {
        let mut bits = SpecBitArray::new(1024);
        b.iter(|| {
            for i in 0..1024 {
                bits.set(black_box(i));
            }
            bits.flash_clear();
        });
    });
    group.bench_function("flash_clear_after_64_sets", |b| {
        let mut bits = SpecBitArray::new(1024);
        b.iter(|| {
            for i in 0..64 {
                bits.set(i * 16);
            }
            bits.flash_clear();
            black_box(bits.none_set())
        });
    });
    group.finish();
}

fn bench_store_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_buffer");
    group.bench_function("coalescing_push_forward", |b| {
        b.iter(|| {
            let mut sb = StoreBuffer::new_coalescing(8, 64);
            for i in 0..64u64 {
                let _ = sb.push(Addr::new((i % 8) * 64 + (i % 8) * 8), i, None);
            }
            black_box(sb.forward(Addr::new(0)))
        });
    });
    group.bench_function("fifo_push_drain", |b| {
        b.iter(|| {
            let mut sb = StoreBuffer::new_fifo(64, 64);
            for i in 0..64u64 {
                let _ = sb.push(Addr::new(i * 8), i, None);
            }
            black_box(sb.drain_all().len())
        });
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let cfg = CacheConfig::paper_l1d();
    let mut group = c.benchmark_group("l1_tag_array");
    group.bench_function("fill_lookup_1024", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(&cfg);
            for i in 0..1024u64 {
                cache.fill(blk(i), LineState::Exclusive, BlockData::zeroed());
            }
            let mut hits = 0;
            for i in 0..1024u64 {
                if cache.contains(blk(i)) {
                    hits += 1;
                }
            }
            black_box(hits)
        });
    });
    group.bench_function("speculative_abort_64_written", |b| {
        b.iter(|| {
            let mut cache = SetAssocCache::new(&cfg);
            for i in 0..64u64 {
                cache.fill(blk(i), LineState::Modified, BlockData::zeroed());
                cache.mark_spec_written(blk(i), 0);
            }
            black_box(cache.flash_invalidate_written(0).len())
        });
    });
    group.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("directory");
    group.bench_function("sharer_tracking_16_cores", |b| {
        b.iter(|| {
            let mut dir = Directory::new(16);
            for i in 0..256u64 {
                for core in 0..4 {
                    dir.add_sharer(blk(i), CoreId(core));
                }
                black_box(dir.holders_except(blk(i), CoreId(0)).len());
                dir.set_owner(blk(i), CoreId(1));
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_spec_bits, bench_store_buffer, bench_cache, bench_directory);
criterion_main!(benches);
