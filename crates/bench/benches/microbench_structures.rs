//! Microbenchmarks of the paper's hardware structures — the flash-clearable
//! speculative bits (Figure 3's functional contract), the coalescing store
//! buffer, the L1 tag array, and the directory — plus the flat ring buffer
//! backing the per-core hot structures, against the `VecDeque` it replaced.
//!
//! Timing uses a plain [`std::time::Instant`] loop (the workspace builds
//! offline, without Criterion): each case is warmed up, then run for a fixed
//! number of iterations, reporting mean ns/iter.

use std::collections::VecDeque;
use std::hint::black_box;
use std::time::Instant;

use ifence_coherence::{DirectoryEntry, EventQueue};
use ifence_mem::{BankedL2, BlockData, LineState, Ring, SetAssocCache, SpecBitArray, StoreBuffer};
use ifence_types::{Addr, BlockAddr, CacheConfig, CoreId, InterconnectConfig, L2Config};

const WARMUP_ITERS: u32 = 20;
const MEASURE_ITERS: u32 = 200;

fn blk(i: u64) -> BlockAddr {
    BlockAddr::containing(Addr::new(i * 64), 64)
}

fn bench<R>(name: &str, mut f: impl FnMut() -> R) {
    for _ in 0..WARMUP_ITERS {
        black_box(f());
    }
    let start = Instant::now();
    for _ in 0..MEASURE_ITERS {
        black_box(f());
    }
    let per_iter = start.elapsed().as_nanos() / MEASURE_ITERS as u128;
    println!("{name:<44} {per_iter:>12} ns/iter");
}

fn bench_spec_bits() {
    // Construct outside the timed closure (flash_clear restores the empty
    // state), so the numbers measure set/flash-clear, not allocation.
    let mut bits = SpecBitArray::new(1024);
    bench("spec_bits/set_1024", || {
        for i in 0..1024 {
            bits.set(black_box(i));
        }
        bits.flash_clear();
    });
    let mut bits = SpecBitArray::new(1024);
    bench("spec_bits/flash_clear_after_64_sets", || {
        for i in 0..64 {
            bits.set(i * 16);
        }
        bits.flash_clear();
        bits.none_set()
    });
}

fn bench_store_buffer() {
    bench("store_buffer/coalescing_push_forward", || {
        let mut sb = StoreBuffer::new_coalescing(8, 64);
        for i in 0..64u64 {
            let _ = sb.push(Addr::new((i % 8) * 64 + (i % 8) * 8), i, None);
        }
        sb.forward(Addr::new(0))
    });
    bench("store_buffer/fifo_push_drain", || {
        let mut sb = StoreBuffer::new_fifo(64, 64);
        for i in 0..64u64 {
            let _ = sb.push(Addr::new(i * 8), i, None);
        }
        sb.drain_all().len()
    });
}

/// The flat ring backing the per-core hot structures against the
/// `VecDeque` it replaced, on the two patterns the pipeline actually runs:
/// head-pop/tail-push churn (dispatch/retire flow through a ROB-sized
/// window) and an indexed front-to-back scan (the issue stage's walk).
fn bench_ring_vs_vecdeque() {
    const CAP: usize = 64;
    const CHURN: u64 = 4096;
    bench("ring/churn_push_pop_4096", || {
        let mut ring: Ring<u64> = Ring::with_capacity(CAP);
        let mut acc = 0u64;
        for i in 0..CHURN {
            if ring.is_full() {
                acc = acc.wrapping_add(ring.pop_front().unwrap());
            }
            ring.push_back(i);
        }
        acc
    });
    bench("vecdeque/churn_push_pop_4096", || {
        let mut deque: VecDeque<u64> = VecDeque::with_capacity(CAP);
        let mut acc = 0u64;
        for i in 0..CHURN {
            if deque.len() == CAP {
                acc = acc.wrapping_add(deque.pop_front().unwrap());
            }
            deque.push_back(i);
        }
        acc
    });
    let mut ring: Ring<u64> = Ring::with_capacity(CAP);
    let mut deque: VecDeque<u64> = VecDeque::with_capacity(CAP);
    // Wrap both around their backing storage so the scans pay the
    // steady-state (non-contiguous) layout, not the freshly-filled one.
    for i in 0..(CAP as u64 + CAP as u64 / 2) {
        if ring.is_full() {
            ring.pop_front();
            deque.pop_front();
        }
        ring.push_back(i);
        deque.push_back(i);
    }
    bench("ring/indexed_scan_64x64", || {
        let mut acc = 0u64;
        for _ in 0..64 {
            for i in 0..ring.len() {
                acc = acc.wrapping_add(*ring.get(i).unwrap());
            }
        }
        acc
    });
    bench("vecdeque/indexed_scan_64x64", || {
        let mut acc = 0u64;
        for _ in 0..64 {
            for i in 0..deque.len() {
                acc = acc.wrapping_add(*deque.get(i).unwrap());
            }
        }
        acc
    });
}

fn bench_cache() {
    let cfg = CacheConfig::paper_l1d();
    bench("l1_tag_array/fill_lookup_1024", || {
        let mut cache = SetAssocCache::new(&cfg);
        for i in 0..1024u64 {
            cache.fill(blk(i), LineState::Exclusive, BlockData::zeroed());
        }
        let mut hits = 0;
        for i in 0..1024u64 {
            if cache.contains(blk(i)) {
                hits += 1;
            }
        }
        hits
    });
    bench("l1_tag_array/speculative_abort_64_written", || {
        let mut cache = SetAssocCache::new(&cfg);
        for i in 0..64u64 {
            cache.fill(blk(i), LineState::Modified, BlockData::zeroed());
            cache.mark_spec_written(blk(i), 0);
        }
        cache.flash_invalidate_written(0).len()
    });
}

fn bench_directory() {
    // The directory now lives inside the banked L2's tags: fill lines, run
    // the sharer state machine on the embedded entries, then evict.
    let cfg =
        L2Config { size_bytes: 16 * 256 * 8 * 64, associativity: 8, hit_latency: 25, mshrs: 32 };
    bench("l2_directory/embedded_sharer_tracking_16_banks", || {
        let mut l2: BankedL2<DirectoryEntry> = BankedL2::new(&cfg, 16, 64);
        for i in 0..256u64 {
            l2.fill(i, BlockData::zeroed(), DirectoryEntry::new(), DirectoryEntry::is_uncached);
            let line = l2.get_mut(i).expect("just filled");
            for core in 0..4 {
                line.dir.add_sharer(CoreId(core));
            }
            black_box(line.dir.holders_except(CoreId(0)).len());
            line.dir.set_owner(CoreId(1));
        }
        for i in 0..256u64 {
            black_box(l2.remove(i));
        }
    });
}

/// The fabric's timing-wheel event queue against the `BinaryHeap` it
/// replaced, on the fabric's actual schedule shape: events land a directory
/// access (~8 cycles) or a few hops (~100–400 cycles) ahead, and the queue
/// is drained in cycle order as time advances.
fn bench_event_wheel_vs_heap() {
    use std::cmp::Reverse;
    const EVENTS: u64 = 4096;
    bench("event_wheel/schedule_pop_4096", || {
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut now = 0u64;
        let mut acc = 0u64;
        for i in 0..EVENTS {
            wheel.schedule(now + 8 + (i % 5) * 100, i);
            now += 3;
            while let Some((_, v)) = wheel.pop_due(now) {
                acc = acc.wrapping_add(v);
            }
        }
        now += 1_000;
        while let Some((_, v)) = wheel.pop_due(now) {
            acc = acc.wrapping_add(v);
        }
        acc
    });
    bench("binary_heap/schedule_pop_4096", || {
        let mut heap: std::collections::BinaryHeap<Reverse<(u64, u64)>> =
            std::collections::BinaryHeap::new();
        let mut now = 0u64;
        let mut acc = 0u64;
        for i in 0..EVENTS {
            heap.push(Reverse((now + 8 + (i % 5) * 100, i)));
            now += 3;
            while let Some(&Reverse((t, v))) = heap.peek() {
                if t > now {
                    break;
                }
                heap.pop();
                acc = acc.wrapping_add(v);
            }
        }
        now += 1_000;
        while let Some(&Reverse((t, v))) = heap.peek() {
            if t > now {
                break;
            }
            heap.pop();
            acc = acc.wrapping_add(v);
        }
        acc
    });
}

/// The precomputed routing table against the arithmetic div/mod torus
/// routing it memoizes, on the all-pairs lookup mix the fabric issues.
fn bench_routing_table() {
    let ic = InterconnectConfig::paper_torus();
    let table = ic.routing_table();
    bench("routing/arithmetic_all_pairs_x64", || {
        let mut acc = 0u64;
        for _ in 0..64 {
            for from in 0..16 {
                for to in 0..16 {
                    acc = acc.wrapping_add(ic.latency(black_box(from), black_box(to)));
                }
            }
        }
        acc
    });
    bench("routing/table_all_pairs_x64", || {
        let mut acc = 0u64;
        for _ in 0..64 {
            for from in 0..16 {
                for to in 0..16 {
                    acc = acc.wrapping_add(table.latency(black_box(from), black_box(to)));
                }
            }
        }
        acc
    });
}

fn main() {
    let _run = ifence_bench::BenchRun::start(
        "microbench_structures",
        "hardware-structure ns/iter sweeps",
        &ifence_bench::paper_params(),
    );
    println!("structure microbenchmarks ({MEASURE_ITERS} iterations each)");
    bench_spec_bits();
    bench_store_buffer();
    bench_ring_vs_vecdeque();
    bench_event_wheel_vs_heap();
    bench_routing_table();
    bench_cache();
    bench_directory();
}
