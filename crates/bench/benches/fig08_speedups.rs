//! Figure 8: speedups of InvisiFence-Selective and conventional TSO/RMO over
//! conventional SC.

use ifence_bench::{paper_params, print_header, workload_suite};
use ifence_sim::figures;

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Figure 8",
        "Speedups over conventional SC (sc, tso, rmo, Invisi_sc, Invisi_tso, Invisi_rmo)",
        &params,
    );
    let data = figures::selective_matrix(&workload_suite(), &params);
    println!("{}", figures::figure8(&data));
    for config in ["tso", "rmo", "Invisi_sc", "Invisi_tso", "Invisi_rmo"] {
        println!(
            "geometric-mean speedup of {config} over sc: {:.3}",
            data.mean_speedup(config, "sc")
        );
    }
}
