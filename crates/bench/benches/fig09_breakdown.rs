//! Figure 9: execution-time breakdown of conventional and InvisiFence
//! configurations, normalised to conventional SC.

use ifence_bench::{paper_params, print_header, workload_suite};
use ifence_sim::figures;

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Figure 9",
        "Runtime breakdown (Busy / Other / SB full / SB drain / Violation), normalised to SC",
        &params,
    );
    let data = figures::selective_matrix(&workload_suite(), &params);
    println!("{}", figures::figure9(&data));
}
