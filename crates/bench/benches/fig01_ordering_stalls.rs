//! Figure 1: ordering stalls in conventional SC/TSO/RMO implementations.

use ifence_bench::{paper_params, print_header, workload_suite};
use ifence_sim::figures;

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Figure 1",
        "Ordering stalls (SB drain / SB full) as a percent of execution time for conventional SC, TSO and RMO",
        &params,
    );
    let (_, table) = figures::figure1(&workload_suite(), &params);
    println!("{table}");
}
