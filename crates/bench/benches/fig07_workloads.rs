//! Figure 7: workload descriptions and the synthetic parameters used to
//! approximate them.

use ifence_bench::{paper_params, print_header};
use ifence_stats::ColumnTable;
use ifence_workloads::presets;

fn main() {
    let params = paper_params();
    let _run =
        print_header("Figure 7", "Workloads (synthetic approximations; see DESIGN.md)", &params);
    let mut table = ColumnTable::new([
        "Workload",
        "Description",
        "mem frac",
        "store frac",
        "CS rate",
        "locks",
        "shared frac",
    ]);
    for w in presets::all_presets() {
        table.push_row([
            w.name.clone(),
            w.description.clone(),
            format!("{:.2}", w.mem_fraction),
            format!("{:.2}", w.store_fraction),
            format!("{:.4}", w.critical_section_rate),
            w.locks.to_string(),
            format!("{:.2}", w.shared_fraction),
        ]);
    }
    println!("{table}");
}
