//! Ablation: wall-clock cost of the fabric hot path — timing-wheel event
//! queue, precomputed torus routing, persistent scratch buffers and indexed
//! wake dispatch — measured end to end on the event-driven, batched and leap
//! kernels, with the kernel phase profiler force-enabled so the table shows
//! *where* the host time goes (core stepping vs fabric stepping vs delivery
//! routing), not just how much of it there is.
//!
//! Apache is the fabric-heavy regime: a lock-heavy sharing pattern drives
//! coherence traffic through the directory, so the event queue, the routing
//! lookups and the wake dispatch all sit on the measured path. The 16-core
//! cell is the paper machine; the 64-core cell (8×8 torus) scales the node
//! count so per-request routing and per-cycle core scans would dominate if
//! they were still O(n). Simulated cycles are asserted identical between the
//! kernels at each scale.
//!
//! Each (kernel, scale) cell appends its own `BENCH_results.json` row; with
//! the profiler on, the rows carry `profile_<phase>_ms` fields, so the
//! trajectory records the phase split across invocations.

use ifence_bench::{paper_params, print_header, BenchRun};
use ifence_stats::{ColumnTable, Phase, PhaseProfile, ProfileSnapshot};
use ifence_types::{ConsistencyModel, EngineKind, MachineConfig};
use ifence_workloads::presets;
use std::time::Instant;

/// Repetitions per cell (minimum taken): wall-clock comparisons on a shared
/// machine need more than one sample per point.
fn reps() -> usize {
    std::env::var("IFENCE_BENCH_REPS").ok().and_then(|v| v.parse().ok()).unwrap_or(3).max(1)
}

/// The paper baseline re-scaled to `cores` nodes on a square torus.
fn config_at(
    engine: EngineKind,
    cores: usize,
    seed: u64,
    batch: bool,
    leap: bool,
) -> MachineConfig {
    let mut cfg = MachineConfig::with_engine(engine);
    cfg.seed = seed;
    cfg.batch_kernel = batch;
    cfg.leap_kernel = leap;
    if cores != cfg.cores {
        let side = (cores as f64).sqrt() as usize;
        assert_eq!(side * side, cores, "scales are square torus sizes");
        cfg.cores = cores;
        cfg.interconnect.mesh_width = side;
        cfg.interconnect.mesh_height = side;
    }
    cfg
}

/// One measured cell: minimum wall clock over the reps, plus the phase
/// profile of the fastest rep.
fn timed_run(
    engine: EngineKind,
    cores: usize,
    batch: bool,
    leap: bool,
    params: &ifence_sim::ExperimentParams,
    workload: &ifence_workloads::WorkloadSpec,
) -> (u64, f64, ProfileSnapshot) {
    let mut cycles = 0;
    let mut best = f64::INFINITY;
    let mut best_profile = ProfileSnapshot::default();
    for rep in 0..reps() {
        let cfg = config_at(engine, cores, params.seed, batch, leap);
        let programs = workload.generate(cfg.cores, params.instructions_per_core, params.seed);
        let machine = ifence_sim::Machine::new(cfg, programs).expect("valid config");
        let profile_start = PhaseProfile::global().snapshot();
        let start = Instant::now();
        let result = machine.into_result(params.max_cycles);
        let elapsed = start.elapsed().as_secs_f64() * 1e3;
        let profile = PhaseProfile::global().snapshot().delta(&profile_start);
        assert!(result.finished, "{} at {cores} cores: run did not finish", engine.label());
        if rep == 0 {
            cycles = result.cycles;
        } else {
            assert_eq!(cycles, result.cycles, "{}: cycles differ across reps", engine.label());
        }
        if elapsed < best {
            best = elapsed;
            best_profile = profile;
        }
    }
    (cycles, best, best_profile)
}

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Ablation",
        "fabric hot path: per-phase host time of the event-driven and batched kernels",
        &params,
    );
    // Force the profiler on for every cell equally: the phase split *is* the
    // data here, and profiling affects no simulated result (the CI smoke in
    // examples/profile_smoke.rs asserts byte-identity with it on and off).
    PhaseProfile::global().set_enabled(true);
    let workload = presets::apache();
    let engine = EngineKind::Conventional(ConsistencyModel::Sc);
    let scales = [16usize, 64];
    let modes = [
        (false, false, "event-driven kernel"),
        (true, false, "batched kernel"),
        (true, true, "leap kernel"),
    ];
    // Timed serially (never through the parallel sweep): concurrent cells
    // would contend for cores and corrupt both the wall clocks and the
    // process-global phase accumulators.
    let mut table = ColumnTable::new([
        "cores",
        "kernel",
        "cycles",
        "wall ms",
        "core_step ms",
        "fabric_step ms",
        "delivery ms",
        "vs event",
    ]);
    for cores in scales {
        let mut event_ms = f64::NAN;
        let mut event_cycles = 0;
        for (batch, leap, detail) in modes {
            let _cell_run = BenchRun::start(
                "ablation_fabric_path",
                &format!("{detail}, {cores} cores"),
                &params,
            );
            let (cycles, ms, profile) = timed_run(engine, cores, batch, leap, &params, &workload);
            let ratio = if batch {
                assert_eq!(
                    cycles, event_cycles,
                    "{cores} cores: {detail} disagrees on simulated cycles"
                );
                format!("{:.2}x", event_ms / ms.max(1e-9))
            } else {
                event_ms = ms;
                event_cycles = cycles;
                String::new()
            };
            table.push_row([
                cores.to_string(),
                detail.to_string(),
                cycles.to_string(),
                format!("{ms:.1}"),
                format!("{:.1}", profile.millis(Phase::CoreStep)),
                format!("{:.1}", profile.millis(Phase::FabricStep)),
                format!("{:.1}", profile.millis(Phase::DeliveryRouting)),
                ratio,
            ]);
        }
    }
    println!("{table}");
    println!(
        "(phase columns are the kernel profiler's wall-clock split of each cell's fastest rep; \
         the fabric path — wheel pops, routed deliveries, table-routed latencies — is the \
         fabric_step + delivery columns, and simulated cycles are identical in all three kernels; \
         the leap kernel's win concentrates in the core_step column, which is what closed-form \
         multi-cycle advancement trims)"
    );
}
