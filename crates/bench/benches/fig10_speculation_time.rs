//! Figure 10: percentage of cycles the InvisiFence-Selective variants spend in
//! speculation.

use ifence_bench::{paper_params, print_header, workload_suite};
use ifence_sim::figures;

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Figure 10",
        "Percent of cycles spent in speculation (Invisi_sc, Invisi_tso, Invisi_rmo)",
        &params,
    );
    let data = figures::selective_matrix(&workload_suite(), &params);
    println!("{}", figures::figure10(&data));
}
