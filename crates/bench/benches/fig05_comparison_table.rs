//! Figure 5: qualitative comparison of BulkSC, InvisiFence and ASO.

use ifence_bench::{paper_params, print_header};
use ifence_stats::ColumnTable;
use invisifence::figure5_rows;

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Figure 5",
        "Comparison of speculative implementations of memory consistency",
        &params,
    );
    let mut table = ColumnTable::new([
        "Dimension",
        "BulkSC",
        "INVISIFENCE-CONTINUOUS",
        "INVISIFENCE-SELECTIVE",
        "ASO",
    ]);
    for row in figure5_rows() {
        table.push_row([
            row.dimension.to_string(),
            row.bulksc.to_string(),
            row.invisifence_continuous.to_string(),
            row.invisifence_selective.to_string(),
            row.aso.to_string(),
        ]);
    }
    println!("{table}");
}
