//! Ablation: L2-capacity sensitivity of the memory hierarchy.
//!
//! The shared L2 is a real banked, finite, inclusive cache with directory
//! state embedded in its tags and a DRAM tier behind it, so miss latencies
//! are an *outcome* of capacity instead of a first-touch constant. This
//! target sweeps the capacity around the paper's 8 MB (Figure 6) — down to
//! configurations that thrash and up to the unbounded sentinel that
//! reproduces the pre-capacity fabric — for conventional RMO and
//! InvisiFence-RMO, reporting cycles, L2 miss ratio, inclusion recalls and
//! DRAM traffic per point.

use ifence_bench::{paper_params, print_header, workload_suite};
use ifence_sim::figures::l2_capacity_sweep;

fn main() {
    let params = paper_params();
    let _run = print_header(
        "Ablation",
        "L2 capacity sensitivity: finite banked L2 + DRAM tier vs the unbounded sentinel",
        &params,
    );
    let workloads = workload_suite();
    let (_, table) = l2_capacity_sweep(&workloads, &params);
    println!("{table}");
    println!(
        "(runtime normalised per engine to the unbounded point; recalls are inclusion \
         invalidations the L2 sent to evict lines still held by L1s)"
    );
}
