//! Shared plumbing for the benchmark harness.
//!
//! Every table and figure of the paper has a `cargo bench` target in
//! `benches/` (they are plain binaries, not Criterion timing loops, because
//! what they produce is the figure's *data*). The experiment size is taken
//! from the `IFENCE_INSTRS` / `IFENCE_SEED` environment variables,
//! defaulting to 100 000 instructions per core on the 16-core paper machine
//! (traces stream through bounded replay windows, so the budget is
//! simulation time, not memory). Experiment grids run through the parallel
//! sweep engine in [`ifence_sim::sweep`] on `IFENCE_JOBS` worker threads
//! (default: available cores) — the emitted tables are byte-identical at any
//! job count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ifence_sim::runner::{process_env, EnvLookup};
use ifence_sim::ExperimentParams;
use ifence_workloads::{presets, Workload};

pub use ifence_sim::sweep;

/// Experiment parameters for figure regeneration (paper machine, environment
/// overridable).
pub fn paper_params() -> ExperimentParams {
    ExperimentParams::from_env()
}

/// The runnable workload suite: the seven Figure 7 presets plus the phased
/// `ServerSwings` scenario, or a subset selected with the `IFENCE_WORKLOADS`
/// environment variable (comma-separated names).
pub fn workload_suite() -> Vec<Workload> {
    workload_suite_from(&process_env)
}

/// Like [`workload_suite`], but reading `IFENCE_WORKLOADS` through an
/// injected lookup (testable without process-global environment mutation).
pub fn workload_suite_from(lookup: EnvLookup<'_>) -> Vec<Workload> {
    match lookup("IFENCE_WORKLOADS") {
        Some(names) => {
            let selected: Vec<Workload> =
                names.split(',').filter_map(|n| presets::workload_by_name(n.trim())).collect();
            if selected.is_empty() {
                presets::all_workloads()
            } else {
                selected
            }
        }
        None => presets::all_workloads(),
    }
}

/// Prints the standard header for a figure-regeneration bench target.
///
/// Takes the caller's already-built params rather than re-reading the
/// environment, so an unparseable `IFENCE_*` value warns exactly once.
pub fn print_header(figure: &str, description: &str, params: &ExperimentParams) {
    println!("================================================================================");
    println!("{figure}: {description}");
    // The sweep worker count is deliberately not printed: output must be
    // byte-identical for a fixed seed at any IFENCE_JOBS value.
    println!(
        "machine: 16-core paper baseline; {} instructions/core, seed {} (override with IFENCE_INSTRS / IFENCE_SEED / IFENCE_WORKLOADS / IFENCE_JOBS)",
        params.instructions_per_core, params.seed
    );
    println!("================================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_defaults_to_all_workloads_including_phased() {
        let suite = workload_suite_from(&|_| None);
        assert_eq!(suite.len(), 8, "seven presets plus ServerSwings");
        assert_eq!(suite.last().unwrap().name(), "ServerSwings");
    }

    #[test]
    fn suite_can_be_narrowed_by_env() {
        let env = |name: &str| (name == "IFENCE_WORKLOADS").then(|| "Barnes, Ocean".to_string());
        let suite = workload_suite_from(&env);
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].name(), "Barnes");
    }

    #[test]
    fn phased_scenario_is_selectable_by_name() {
        let env = |name: &str| (name == "IFENCE_WORKLOADS").then(|| "ServerSwings".to_string());
        let suite = workload_suite_from(&env);
        assert_eq!(suite.len(), 1);
        assert!(matches!(suite[0], Workload::Phased(_)));
    }

    #[test]
    fn params_come_from_injected_environment() {
        let env = |name: &str| (name == "IFENCE_INSTRS").then(|| "777".to_string());
        let p = ExperimentParams::from_env_with(&env);
        assert_eq!(p.instructions_per_core, 777);
    }
}
