//! Shared plumbing for the benchmark harness.
//!
//! Every table and figure of the paper has a `cargo bench` target in
//! `benches/` (they are plain binaries, not Criterion timing loops, because
//! what they produce is the figure's *data*). The experiment size is taken
//! from the `IFENCE_INSTRS` / `IFENCE_SEED` environment variables,
//! defaulting to 100 000 instructions per core on the 16-core paper machine
//! (traces stream through bounded replay windows, so the budget is
//! simulation time, not memory). Experiment grids run through the parallel
//! sweep engine in [`ifence_sim::sweep`] on `IFENCE_JOBS` worker threads
//! (default: available cores) — the emitted tables are byte-identical at any
//! job count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ifence_sim::runner::{process_env, EnvLookup};
use ifence_sim::ExperimentParams;
use ifence_stats::{Phase, PhaseProfile, ProfileSnapshot};
use ifence_store::Json;
use ifence_workloads::{presets, Workload};
use std::path::PathBuf;
use std::time::Instant;

pub use ifence_sim::sweep;

/// Experiment parameters for figure regeneration (paper machine, environment
/// overridable).
pub fn paper_params() -> ExperimentParams {
    ExperimentParams::from_env()
}

/// The runnable workload suite: the seven Figure 7 presets plus the phased
/// `ServerSwings` scenario, or a subset selected with the `IFENCE_WORKLOADS`
/// environment variable (comma-separated names).
pub fn workload_suite() -> Vec<Workload> {
    workload_suite_from(&process_env)
}

/// Like [`workload_suite`], but reading `IFENCE_WORKLOADS` through an
/// injected lookup (testable without process-global environment mutation).
pub fn workload_suite_from(lookup: EnvLookup<'_>) -> Vec<Workload> {
    match lookup("IFENCE_WORKLOADS") {
        Some(names) => {
            let selected: Vec<Workload> =
                names.split(',').filter_map(|n| presets::workload_by_name(n.trim())).collect();
            if selected.is_empty() {
                presets::all_workloads()
            } else {
                selected
            }
        }
        None => presets::all_workloads(),
    }
}

/// Prints the standard header for a figure-regeneration bench target and
/// starts its wall-clock record.
///
/// Takes the caller's already-built params rather than re-reading the
/// environment, so an unparseable `IFENCE_*` value warns exactly once.
///
/// The returned [`BenchRun`] guard must be bound for the duration of the
/// bench (`let _run = print_header(...)`); when it drops, the run's wall
/// clock is appended to `BENCH_results.json` so the perf trajectory
/// accumulates across invocations (see [`BenchRun`] for the file format and
/// the `IFENCE_BENCH_RESULTS` override).
#[must_use = "bind the guard (`let _run = print_header(...)`) so the run is timed and recorded"]
pub fn print_header(figure: &str, description: &str, params: &ExperimentParams) -> BenchRun {
    println!("================================================================================");
    println!("{figure}: {description}");
    // The sweep worker count is deliberately not printed: output must be
    // byte-identical for a fixed seed at any IFENCE_JOBS value.
    println!(
        "machine: 16-core paper baseline; {} instructions/core, seed {} (override with IFENCE_INSTRS / IFENCE_SEED / IFENCE_WORKLOADS / IFENCE_JOBS)",
        params.instructions_per_core, params.seed
    );
    println!("================================================================================");
    BenchRun::begin(figure, description, params, bench_results_path(&process_env))
}

/// Where bench records accumulate: `IFENCE_BENCH_RESULTS` (an empty value or
/// `off` disables recording), defaulting to `BENCH_results.json` at the
/// workspace root — anchored via this crate's manifest directory because
/// `cargo bench` runs each target with the *package* directory as its
/// working directory, which would otherwise scatter trajectories.
fn bench_results_path(lookup: EnvLookup<'_>) -> Option<PathBuf> {
    match lookup("IFENCE_BENCH_RESULTS") {
        Some(value) => {
            let trimmed = value.trim();
            if trimmed.is_empty() || trimmed.eq_ignore_ascii_case("off") {
                None
            } else {
                Some(PathBuf::from(trimmed))
            }
        }
        None => Some(default_results_path()),
    }
}

/// Hardware threads the host exposes to this process, recorded with every
/// trajectory row so wall clocks from differently sized hosts are never
/// compared as equals.
fn host_threads() -> u64 {
    std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(1)
}

/// `<workspace root>/BENCH_results.json`.
fn default_results_path() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")).join("BENCH_results.json")
}

/// A running bench target's wall-clock record. On drop it appends one entry
/// to the trajectory file (a JSON array of objects):
///
/// ```json
/// {"bench":"Figure 8","detail":"…","instructions_per_core":100000,
///  "seed":523429358,"jobs":16,"host_threads":16,"wall_clock_ms":1234.5,
///  "unix_time_secs":…}
/// ```
///
/// `host_threads` is the hardware parallelism the host exposed to the run
/// (`std::thread::available_parallelism`) — wall clocks from differently
/// sized hosts are not comparable, and the trajectory should say so.
///
/// The file is rewritten atomically (tmp file + rename); an unreadable or
/// corrupt trajectory is restarted with a warning rather than failing the
/// bench — recording is best-effort by design.
///
/// When the kernel phase profiler is accumulating (`IFENCE_PROFILE=1` or
/// [`PhaseProfile::set_enabled`]), the record also carries the per-phase
/// wall clock this run accumulated, as `profile_<phase>_ms` fields, plus a
/// `profile_other_ms` residual — the wall clock no phase claimed (machine
/// construction, result finalisation, table formatting) — so the attributed
/// phases can be read honestly against the whole wall clock.
///
/// Benches that sweep a structured parameter attach it with
/// [`BenchRun::with_u64`] (e.g. `machine_threads`), so trajectory consumers
/// can filter rows numerically instead of parsing the detail string.
pub struct BenchRun {
    bench: String,
    detail: String,
    instructions_per_core: u64,
    seed: u64,
    jobs: u64,
    extra: Vec<(String, u64)>,
    start: Instant,
    profile_start: ProfileSnapshot,
    path: Option<PathBuf>,
}

impl BenchRun {
    /// Starts a standalone record for a bench target that does not print the
    /// standard figure header (the structure microbenchmarks).
    pub fn start(bench: &str, detail: &str, params: &ExperimentParams) -> BenchRun {
        Self::begin(bench, detail, params, bench_results_path(&process_env))
    }

    fn begin(
        bench: &str,
        detail: &str,
        params: &ExperimentParams,
        path: Option<PathBuf>,
    ) -> BenchRun {
        BenchRun {
            bench: bench.to_string(),
            detail: detail.to_string(),
            instructions_per_core: params.instructions_per_core as u64,
            seed: params.seed,
            jobs: params.effective_jobs() as u64,
            extra: Vec::new(),
            start: Instant::now(),
            profile_start: PhaseProfile::global().snapshot(),
            path,
        }
    }

    /// Attaches a structured numeric field to this run's trajectory record
    /// (e.g. `machine_threads`), alongside the human-readable detail string.
    #[must_use]
    pub fn with_u64(mut self, name: &str, value: u64) -> BenchRun {
        self.extra.push((name.to_string(), value));
        self
    }

    /// The record this run will append (without the wall clock, which is
    /// taken at drop).
    fn record(&self, wall_clock_ms: f64) -> Json {
        let unix_time_secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut fields = vec![
            ("bench".to_string(), Json::Str(self.bench.clone())),
            ("detail".to_string(), Json::Str(self.detail.clone())),
            ("instructions_per_core".to_string(), Json::UInt(self.instructions_per_core)),
            ("seed".to_string(), Json::UInt(self.seed)),
            ("jobs".to_string(), Json::UInt(self.jobs)),
            ("host_threads".to_string(), Json::UInt(host_threads())),
            ("wall_clock_ms".to_string(), Json::Float(wall_clock_ms)),
            ("unix_time_secs".to_string(), Json::UInt(unix_time_secs)),
        ];
        for (name, value) in &self.extra {
            fields.push((name.clone(), Json::UInt(*value)));
        }
        if PhaseProfile::global().enabled() {
            let delta = PhaseProfile::global().snapshot().delta(&self.profile_start);
            let mut attributed_ms = 0.0;
            for phase in Phase::ALL {
                attributed_ms += delta.millis(phase);
                fields.push((
                    format!("profile_{}_ms", phase.label()),
                    Json::Float(delta.millis(phase)),
                ));
            }
            // The wall clock no phase claimed: machine construction, result
            // finalisation, table formatting. Clamped at zero — timer
            // granularity can put the attributed sum a hair over the wall
            // clock on sub-millisecond runs.
            fields.push((
                "profile_other_ms".to_string(),
                Json::Float((wall_clock_ms - attributed_ms).max(0.0)),
            ));
        }
        Json::Object(fields)
    }

    fn append(&self) -> std::io::Result<()> {
        let Some(path) = &self.path else {
            return Ok(());
        };
        let wall_clock_ms = 1000.0 * self.start.elapsed().as_secs_f64();
        let mut entries = match std::fs::read_to_string(path) {
            Ok(text) => match Json::parse(&text) {
                Ok(Json::Array(entries)) => entries,
                Ok(_) | Err(_) => {
                    eprintln!(
                        "warning: {} is not a JSON array of bench records; starting fresh",
                        path.display()
                    );
                    Vec::new()
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        entries.push(self.record(wall_clock_ms));
        let mut text = Json::Array(entries).encode();
        text.push('\n');
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, path)
    }
}

impl Drop for BenchRun {
    fn drop(&mut self) {
        if let Err(e) = self.append() {
            eprintln!("warning: could not record bench trajectory: {e}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_defaults_to_all_workloads_including_phased() {
        let suite = workload_suite_from(&|_| None);
        assert_eq!(suite.len(), 8, "seven presets plus ServerSwings");
        assert_eq!(suite.last().unwrap().name(), "ServerSwings");
    }

    #[test]
    fn suite_can_be_narrowed_by_env() {
        let env = |name: &str| (name == "IFENCE_WORKLOADS").then(|| "Barnes, Ocean".to_string());
        let suite = workload_suite_from(&env);
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].name(), "Barnes");
    }

    #[test]
    fn phased_scenario_is_selectable_by_name() {
        let env = |name: &str| (name == "IFENCE_WORKLOADS").then(|| "ServerSwings".to_string());
        let suite = workload_suite_from(&env);
        assert_eq!(suite.len(), 1);
        assert!(matches!(suite[0], Workload::Phased(_)));
    }

    #[test]
    fn params_come_from_injected_environment() {
        let env = |name: &str| (name == "IFENCE_INSTRS").then(|| "777".to_string());
        let p = ExperimentParams::from_env_with(&env);
        assert_eq!(p.instructions_per_core, 777);
    }

    #[test]
    fn bench_records_accumulate_across_runs() {
        let path = std::env::temp_dir()
            .join(format!("ifence-bench-trajectory-test-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let params = ExperimentParams::quick_test();
        drop(BenchRun::begin("Figure 8", "first", &params, Some(path.clone())));
        drop(BenchRun::begin("Figure 8", "second", &params, Some(path.clone())));
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = Json::parse(&text).unwrap();
        let Json::Array(entries) = doc else {
            panic!("trajectory must be a JSON array, got {text}");
        };
        assert_eq!(entries.len(), 2, "records accumulate instead of overwriting");
        for entry in &entries {
            assert_eq!(entry.field("bench"), Some(&Json::Str("Figure 8".to_string())));
            assert!(entry.field("wall_clock_ms").and_then(Json::as_f64).is_some());
            assert_eq!(
                entry.field("seed").and_then(Json::as_u64),
                Some(params.seed),
                "record carries the run's parameters"
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn records_carry_host_threads_and_structured_fields() {
        let params = ExperimentParams::quick_test();
        let run =
            BenchRun::begin("Ablation", "2 threads", &params, None).with_u64("machine_threads", 2);
        let record = run.record(1.0);
        assert!(
            record.field("host_threads").and_then(Json::as_u64).unwrap() >= 1,
            "every record must say how much hardware the host exposed"
        );
        assert_eq!(
            record.field("machine_threads").and_then(Json::as_u64),
            Some(2),
            "structured fields ride alongside the detail string"
        );
    }

    #[test]
    fn profiled_records_carry_a_residual_bucket() {
        let params = ExperimentParams::quick_test();
        let run = BenchRun::begin("Ablation", "residual", &params, None);
        PhaseProfile::global().set_enabled(true);
        let record = run.record(10.0);
        PhaseProfile::global().set_enabled(false);
        let other = record
            .field("profile_other_ms")
            .and_then(Json::as_f64)
            .expect("profiled records carry the residual");
        assert!((0.0..=10.0).contains(&other), "residual {other} must fit the wall clock");
        let attributed: f64 = Phase::ALL
            .iter()
            .filter_map(|p| record.field(&format!("profile_{}_ms", p.label())))
            .filter_map(Json::as_f64)
            .sum();
        assert!(
            attributed + other <= 10.0 + 1e-9,
            "phases plus residual must not exceed the wall clock"
        );
    }

    #[test]
    fn trajectory_recording_can_be_disabled() {
        assert_eq!(bench_results_path(&|_| Some("off".to_string())), None);
        assert_eq!(bench_results_path(&|_| Some("  ".to_string())), None);
        assert_eq!(
            bench_results_path(&|_| Some("custom.json".to_string())),
            Some(PathBuf::from("custom.json"))
        );
        let default = bench_results_path(&|_| None).expect("recording is on by default");
        assert!(default.ends_with("BENCH_results.json"));
        assert!(
            default.parent().unwrap().join("Cargo.toml").exists(),
            "default trajectory sits at the workspace root: {}",
            default.display()
        );
    }

    #[test]
    fn corrupt_trajectory_restarts_instead_of_failing() {
        let path = std::env::temp_dir()
            .join(format!("ifence-bench-corrupt-test-{}.json", std::process::id()));
        std::fs::write(&path, "not json at all").unwrap();
        let params = ExperimentParams::quick_test();
        drop(BenchRun::begin("Ablation", "recovery", &params, Some(path.clone())));
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let Json::Array(entries) = doc else { panic!("restarted file must be an array") };
        assert_eq!(entries.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
