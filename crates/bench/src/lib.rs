//! Shared plumbing for the benchmark harness.
//!
//! Every table and figure of the paper has a `cargo bench` target in
//! `benches/` (they are plain binaries, not Criterion timing loops, because
//! what they produce is the figure's *data*). The experiment size is taken
//! from the `IFENCE_INSTRS` / `IFENCE_SEED` environment variables, defaulting
//! to 20 000 instructions per core on the 16-core paper machine. Experiment
//! grids run through the parallel sweep engine in [`ifence_sim::sweep`] on
//! `IFENCE_JOBS` worker threads (default: available cores) — the emitted
//! tables are byte-identical at any job count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use ifence_sim::ExperimentParams;
use ifence_workloads::{presets, WorkloadSpec};

pub use ifence_sim::sweep;

/// Experiment parameters for figure regeneration (paper machine, environment
/// overridable).
pub fn paper_params() -> ExperimentParams {
    ExperimentParams::from_env()
}

/// The full workload suite of Figure 7, or a subset selected with the
/// `IFENCE_WORKLOADS` environment variable (comma-separated names).
pub fn workload_suite() -> Vec<WorkloadSpec> {
    match std::env::var("IFENCE_WORKLOADS") {
        Ok(names) => {
            let selected: Vec<WorkloadSpec> =
                names.split(',').filter_map(|n| presets::by_name(n.trim())).collect();
            if selected.is_empty() {
                presets::all_presets()
            } else {
                selected
            }
        }
        Err(_) => presets::all_presets(),
    }
}

/// Prints the standard header for a figure-regeneration bench target.
///
/// Takes the caller's already-built params rather than re-reading the
/// environment, so an unparseable `IFENCE_*` value warns exactly once.
pub fn print_header(figure: &str, description: &str, params: &ExperimentParams) {
    println!("================================================================================");
    println!("{figure}: {description}");
    // The sweep worker count is deliberately not printed: output must be
    // byte-identical for a fixed seed at any IFENCE_JOBS value.
    println!(
        "machine: 16-core paper baseline; {} instructions/core, seed {} (override with IFENCE_INSTRS / IFENCE_SEED / IFENCE_WORKLOADS / IFENCE_JOBS)",
        params.instructions_per_core, params.seed
    );
    println!("================================================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_defaults_to_all_presets() {
        std::env::remove_var("IFENCE_WORKLOADS");
        assert_eq!(workload_suite().len(), 7);
    }

    #[test]
    fn suite_can_be_narrowed_by_env() {
        std::env::set_var("IFENCE_WORKLOADS", "Barnes, Ocean");
        let suite = workload_suite();
        std::env::remove_var("IFENCE_WORKLOADS");
        assert_eq!(suite.len(), 2);
        assert_eq!(suite[0].name, "Barnes");
    }

    #[test]
    fn params_come_from_environment() {
        std::env::set_var("IFENCE_INSTRS", "777");
        let p = paper_params();
        std::env::remove_var("IFENCE_INSTRS");
        assert_eq!(p.instructions_per_core, 777);
    }
}
