//! Streaming-vs-materialized trace equivalence: a machine fed by lazily
//! generating, bounded-window [`InstructionSource`]s must produce a
//! [`MachineResult`] byte-identical to one fed the same workload as fully
//! materialized `Vec<Program>` traces — for every ordering engine, including
//! the speculative ones whose rollbacks re-fetch inside the replay window.
//!
//! This is the safety net for the whole streaming trace layer: a window
//! released too eagerly, a re-fetch that regenerates different instructions,
//! or an end-of-trace discovered at the wrong cycle all show up here as a
//! field-level mismatch. The memory side of the bargain — the streaming
//! window stays O(ROB + speculation depth) while the materialized path holds
//! the whole trace — is asserted directly on the machines' resident
//! high-water marks.

use ifence_sim::{Machine, MachineResult};
use invisifence_repro::prelude::*;

const MAX_CYCLES: u64 = 30_000_000;
const INSTRUCTIONS: usize = 900;

/// Every engine kind the simulator implements ([`EngineKind::all`]), so a
/// newly added kind is held to the equivalence guarantee automatically.
fn engines() -> Vec<EngineKind> {
    EngineKind::all().to_vec()
}

fn run_materialized(engine: EngineKind, workload: &Workload, instructions: usize) -> MachineResult {
    let cfg = MachineConfig::small_test(engine);
    let programs = workload.generate(cfg.cores, instructions, cfg.seed);
    Machine::new(cfg, programs).expect("valid config").into_result(MAX_CYCLES)
}

fn run_streaming(engine: EngineKind, workload: &Workload, instructions: usize) -> MachineResult {
    let cfg = MachineConfig::small_test(engine);
    let sources = workload.sources(cfg.cores, instructions, cfg.seed);
    Machine::from_sources(cfg, sources).expect("valid config").into_result(MAX_CYCLES)
}

fn assert_equivalent(engine: EngineKind, workload: &Workload) {
    let materialized = run_materialized(engine, workload, INSTRUCTIONS);
    let streaming = run_streaming(engine, workload, INSTRUCTIONS);
    assert!(materialized.finished, "{} on {} did not finish", engine.label(), workload.name());
    // Compare field by field first so a mismatch names the offending part…
    assert_eq!(
        materialized.cycles,
        streaming.cycles,
        "{} on {}: cycle counts diverge",
        engine.label(),
        workload.name()
    );
    for (core, (m, s)) in materialized.per_core.iter().zip(&streaming.per_core).enumerate() {
        assert_eq!(
            m.breakdown,
            s.breakdown,
            "{} on {}: core {core} breakdown diverges",
            engine.label(),
            workload.name()
        );
        assert_eq!(
            m.counters,
            s.counters,
            "{} on {}: core {core} counters diverge",
            engine.label(),
            workload.name()
        );
    }
    assert_eq!(
        materialized.load_results,
        streaming.load_results,
        "{} on {}: retired-load values diverge",
        engine.label(),
        workload.name()
    );
    // …then require full structural equality (finished, deadlocked, label).
    assert_eq!(
        materialized,
        streaming,
        "{} on {}: results diverge",
        engine.label(),
        workload.name()
    );
}

#[test]
fn every_engine_is_equivalent_on_barnes() {
    let workload = presets::barnes().into();
    for engine in engines() {
        assert_equivalent(engine, &workload);
    }
}

#[test]
fn every_engine_is_equivalent_on_apache() {
    let workload = presets::apache().into();
    for engine in engines() {
        assert_equivalent(engine, &workload);
    }
}

#[test]
fn phased_workload_is_equivalent_across_paths() {
    // The phased scenario switches specs mid-run — the case that exists only
    // because of streaming. The materialized reference drains the same
    // sources, so the two paths must still agree bit for bit.
    let workload = Workload::from(presets::server_swings());
    for engine in [
        EngineKind::Conventional(ConsistencyModel::Sc),
        EngineKind::InvisiSelective(ConsistencyModel::Rmo),
        EngineKind::InvisiContinuous { commit_on_violate: true },
    ] {
        assert_equivalent(engine, &workload);
    }
}

#[test]
fn streaming_window_stays_bounded_while_materialized_holds_the_trace() {
    // A longer run on a speculative engine: rollbacks must replay from
    // checkpoints, yet the resident window stays O(ROB + speculation depth)
    // — nowhere near the trace length the materialized path holds.
    let instructions = 20_000;
    let workload: Workload = presets::apache().into();
    let engine = EngineKind::InvisiSelective(ConsistencyModel::Sc);

    let cfg = MachineConfig::small_test(engine);
    let sources = workload.sources(cfg.cores, instructions, cfg.seed);
    let mut streaming = Machine::from_sources(cfg, sources).expect("valid config");
    let result = streaming.run(MAX_CYCLES);
    assert!(result.finished);
    let window = streaming.max_trace_resident();

    let cfg = MachineConfig::small_test(engine);
    let programs = workload.generate(cfg.cores, instructions, cfg.seed);
    let mut materialized = Machine::new(cfg, programs).expect("valid config");
    let reference = materialized.run(MAX_CYCLES);
    assert_eq!(result, reference, "paths diverged on the long run");
    assert!(
        materialized.max_trace_resident() >= instructions,
        "the materialized path holds the whole trace"
    );
    assert!(
        window * 4 < instructions,
        "streaming window ({window}) must be far below trace length ({instructions})"
    );
}

#[test]
fn rollback_refetch_inside_the_window_is_identical() {
    // Drive a source the way a speculating core does: fetch ahead, release
    // the safe frontier, then roll back and re-fetch a suffix. Every
    // re-fetched instruction must equal the materialized reference.
    let workload: Workload = presets::apache().into();
    let reference = &workload.generate(2, 5_000, 42)[1];
    let mut source = workload.source_for_core(1, 2, 5_000, 42);
    let rob_depth = 96;
    let mut fetched = 0usize;
    while let Some(instr) = source.fetch(fetched) {
        assert_eq!(Some(&instr), reference.get(fetched), "forward fetch diverges at {fetched}");
        // Periodically simulate a violation rollback to a checkpoint one ROB
        // depth back, re-fetching the window.
        if fetched % 1_111 == 1_110 {
            let resume_at = fetched.saturating_sub(rob_depth);
            for i in resume_at..=fetched {
                assert_eq!(
                    source.fetch(i).as_ref(),
                    reference.get(i),
                    "rollback re-fetch diverges at {i}"
                );
            }
        }
        // The core never releases past its oldest possible rollback target.
        source.release(fetched.saturating_sub(2 * rob_depth));
        fetched += 1;
    }
    assert_eq!(fetched, reference.len(), "stream and materialized trace end together");
    assert!(source.resident() <= 4 * rob_depth + 64, "window stayed bounded");
}
