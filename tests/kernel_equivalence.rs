//! Dense-vs-event-driven kernel equivalence: the event-driven simulation
//! kernel skips cycles only when they are provably no-ops, so for every
//! ordering engine and workload the two schedules must produce byte-identical
//! [`MachineResult`]s — cycle counts, per-core counters, runtime breakdowns
//! and retired-load values alike.
//!
//! This is the safety net for the whole quiescence analysis: any wake hint
//! that fires too late, any state change the activity report misses, or any
//! mis-attributed skipped cycle shows up here as a field-level mismatch.

use ifence_sim::{Machine, MachineResult};
use invisifence_repro::prelude::*;

const MAX_CYCLES: u64 = 30_000_000;
const INSTRUCTIONS: usize = 900;

/// Every engine kind the simulator implements ([`EngineKind::all`]), so a
/// newly added kind is held to the equivalence guarantee automatically.
fn engines() -> Vec<EngineKind> {
    EngineKind::all().to_vec()
}

fn run_with_kernel(engine: EngineKind, workload: &WorkloadSpec, dense: bool) -> MachineResult {
    let mut cfg = MachineConfig::small_test(engine);
    cfg.dense_kernel = dense;
    let programs = workload.generate(cfg.cores, INSTRUCTIONS, cfg.seed);
    Machine::new(cfg, programs).expect("valid config").into_result(MAX_CYCLES)
}

fn assert_equivalent(engine: EngineKind, workload: &WorkloadSpec) {
    let dense = run_with_kernel(engine, workload, true);
    let skipping = run_with_kernel(engine, workload, false);
    assert!(dense.finished, "{} on {} did not finish", engine.label(), workload.name);
    // Compare field by field first so a mismatch names the offending part…
    assert_eq!(
        dense.cycles,
        skipping.cycles,
        "{} on {}: cycle counts diverge",
        engine.label(),
        workload.name
    );
    for (core, (d, s)) in dense.per_core.iter().zip(&skipping.per_core).enumerate() {
        assert_eq!(
            d.breakdown,
            s.breakdown,
            "{} on {}: core {core} breakdown diverges",
            engine.label(),
            workload.name
        );
        assert_eq!(
            d.counters,
            s.counters,
            "{} on {}: core {core} counters diverge",
            engine.label(),
            workload.name
        );
    }
    assert_eq!(
        dense.load_results,
        skipping.load_results,
        "{} on {}: retired-load values diverge",
        engine.label(),
        workload.name
    );
    // …then require full structural equality (finished, deadlocked, label).
    assert_eq!(dense, skipping, "{} on {}: results diverge", engine.label(), workload.name);
}

#[test]
fn every_engine_is_equivalent_on_barnes() {
    let workload = presets::barnes();
    for engine in engines() {
        assert_equivalent(engine, &workload);
    }
}

#[test]
fn every_engine_is_equivalent_on_apache() {
    let workload = presets::apache();
    for engine in engines() {
        assert_equivalent(engine, &workload);
    }
}

#[test]
fn litmus_runs_are_equivalent_across_kernels() {
    // Litmus programs are adversarially contended, exercising deferral,
    // rollback and replay paths the statistical workloads rarely hit.
    for (name, test) in [
        ("store-buffering", LitmusTest::store_buffering(15, false)),
        ("message-passing", LitmusTest::message_passing(15, true)),
        ("iriw", LitmusTest::iriw(15, false)),
    ] {
        for engine in [
            EngineKind::Conventional(ConsistencyModel::Sc),
            EngineKind::InvisiContinuous { commit_on_violate: true },
            EngineKind::Aso(ConsistencyModel::Sc),
        ] {
            let run = |dense: bool| {
                let mut cfg = MachineConfig::small_test(engine);
                cfg.dense_kernel = dense;
                cfg.seed = 1;
                let mut programs = test.programs().to_vec();
                while programs.len() < cfg.cores {
                    programs.push(Program::new());
                }
                Machine::new(cfg, programs).expect("valid config").into_result(MAX_CYCLES)
            };
            let (dense, skipping) = (run(true), run(false));
            assert!(dense.finished, "{} on {name} did not finish", engine.label());
            assert_eq!(dense, skipping, "{} on {name}: results diverge", engine.label());
        }
    }
}
