//! Five-way kernel equivalence: the event-driven simulation kernel skips
//! cycles only when they are provably no-ops, the batched execution fast
//! path elides a stepped cycle's maintenance stages only when they are
//! provably dead, the epoch-parallel kernel steps disjoint core partitions
//! concurrently only up to a horizon the coherence fabric proves
//! interaction-free, and leap execution advances leap-transparent cores
//! over whole event-free runs in one streamlined loop — so for every
//! ordering engine and workload all five schedules (dense, event-driven,
//! batched, leap, epoch-parallel at any thread count, with and without
//! leaping) must produce byte-identical [`MachineResult`]s — cycle counts,
//! per-core counters, runtime breakdowns and retired-load values alike.
//!
//! This is the safety net for the whole quiescence analysis, for the
//! batching contract, for the leap-transparency contract, and for the
//! epoch-parallel merge order: any wake hint that fires too late, any state
//! change the activity report misses, any mis-attributed skipped cycle, any
//! fast cycle whose elided stages were not actually dead, any cycle-run
//! attribution a leap flushes wrongly, or any cross-thread emission merged
//! into the fabric out of serial order shows up here as a field-level
//! mismatch.

use ifence_sim::{Machine, MachineResult};
use invisifence_repro::prelude::*;

const MAX_CYCLES: u64 = 30_000_000;
const INSTRUCTIONS: usize = 900;

/// The kernel schedules held to byte-identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelMode {
    /// Poll every core every cycle (the debug reference).
    Dense,
    /// Skip provably quiescent cycles; no batching.
    Event,
    /// Event-driven plus the per-core batched fast path.
    Batched,
    /// Batched plus leap execution (serially: the epoch loop at one thread).
    Leap,
    /// Batched, with cores partitioned across this many worker threads
    /// stepping epoch-synchronously. Leaping off.
    EpochParallel(usize),
    /// Epoch-parallel with leap execution inside each worker's epochs.
    LeapEpoch(usize),
}

impl KernelMode {
    const ALL: [KernelMode; 9] = [
        KernelMode::Dense,
        KernelMode::Event,
        KernelMode::Batched,
        KernelMode::Leap,
        KernelMode::EpochParallel(1),
        KernelMode::EpochParallel(2),
        KernelMode::EpochParallel(4),
        KernelMode::LeapEpoch(2),
        KernelMode::LeapEpoch(4),
    ];

    fn apply(self, cfg: &mut MachineConfig) {
        cfg.machine_threads = 1;
        cfg.leap_kernel = false;
        match self {
            KernelMode::Dense => {
                cfg.dense_kernel = true;
                cfg.batch_kernel = false;
            }
            KernelMode::Event => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = false;
            }
            KernelMode::Batched => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = true;
            }
            KernelMode::Leap => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = true;
                cfg.leap_kernel = true;
            }
            KernelMode::EpochParallel(threads) => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = true;
                cfg.machine_threads = threads;
            }
            KernelMode::LeapEpoch(threads) => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = true;
                cfg.leap_kernel = true;
                cfg.machine_threads = threads;
            }
        }
    }
}

/// Every engine kind the simulator implements ([`EngineKind::all`]), so a
/// newly added kind is held to the equivalence guarantee automatically.
fn engines() -> Vec<EngineKind> {
    EngineKind::all().to_vec()
}

fn run_with_kernel(engine: EngineKind, workload: &WorkloadSpec, mode: KernelMode) -> MachineResult {
    let mut cfg = MachineConfig::small_test(engine);
    mode.apply(&mut cfg);
    let programs = workload.generate(cfg.cores, INSTRUCTIONS, cfg.seed);
    Machine::new(cfg, programs).expect("valid config").into_result(MAX_CYCLES)
}

/// Compares one alternative schedule against the dense reference field by
/// field, so a mismatch names the offending part before the full structural
/// equality check.
fn assert_matches_reference(
    dense: &MachineResult,
    other: &MachineResult,
    mode: KernelMode,
    engine: EngineKind,
    workload: &str,
) {
    let label = engine.label();
    assert_eq!(
        dense.cycles, other.cycles,
        "{label} on {workload}: {mode:?} cycle count diverges from dense"
    );
    for (core, (d, o)) in dense.per_core.iter().zip(&other.per_core).enumerate() {
        assert_eq!(
            d.breakdown, o.breakdown,
            "{label} on {workload}: {mode:?} core {core} breakdown diverges"
        );
        assert_eq!(
            d.counters, o.counters,
            "{label} on {workload}: {mode:?} core {core} counters diverge"
        );
    }
    assert_eq!(
        dense.load_results, other.load_results,
        "{label} on {workload}: {mode:?} retired-load values diverge"
    );
    // …then require full structural equality (finished, deadlocked, label).
    assert_eq!(dense, other, "{label} on {workload}: {mode:?} results diverge");
}

fn assert_equivalent(engine: EngineKind, workload: &WorkloadSpec) {
    let dense = run_with_kernel(engine, workload, KernelMode::Dense);
    assert!(dense.finished, "{} on {} did not finish", engine.label(), workload.name);
    for mode in KernelMode::ALL {
        if mode == KernelMode::Dense {
            continue;
        }
        let other = run_with_kernel(engine, workload, mode);
        assert_matches_reference(&dense, &other, mode, engine, &workload.name);
    }
}

#[test]
fn every_engine_is_equivalent_on_barnes() {
    let workload = presets::barnes();
    for engine in engines() {
        assert_equivalent(engine, &workload);
    }
}

#[test]
fn every_engine_is_equivalent_on_apache() {
    let workload = presets::apache();
    for engine in engines() {
        assert_equivalent(engine, &workload);
    }
}

#[test]
fn litmus_runs_are_equivalent_across_kernels() {
    // Litmus programs are adversarially contended, exercising deferral,
    // rollback and replay paths the statistical workloads rarely hit.
    for (name, test) in [
        ("store-buffering", LitmusTest::store_buffering(15, false)),
        ("message-passing", LitmusTest::message_passing(15, true)),
        ("iriw", LitmusTest::iriw(15, false)),
    ] {
        for engine in [
            EngineKind::Conventional(ConsistencyModel::Sc),
            EngineKind::InvisiContinuous { commit_on_violate: true },
            EngineKind::Aso(ConsistencyModel::Sc),
        ] {
            let run = |mode: KernelMode| {
                let mut cfg = MachineConfig::small_test(engine);
                mode.apply(&mut cfg);
                cfg.seed = 1;
                let mut programs = test.programs().to_vec();
                while programs.len() < cfg.cores {
                    programs.push(Program::new());
                }
                Machine::new(cfg, programs).expect("valid config").into_result(MAX_CYCLES)
            };
            let dense = run(KernelMode::Dense);
            assert!(dense.finished, "{} on {name} did not finish", engine.label());
            for mode in KernelMode::ALL {
                if mode == KernelMode::Dense {
                    continue;
                }
                let other = run(mode);
                assert_eq!(dense, other, "{} on {name}: {mode:?} results diverge", engine.label());
            }
        }
    }
}

#[test]
fn epoch_parallel_runs_are_repeat_deterministic() {
    // Byte-identity to dense already implies determinism, but this test
    // fails more legibly if a data race ever slips in: the same 4-thread
    // run, executed three times, must reproduce itself exactly.
    let workload = presets::apache();
    let engine = EngineKind::InvisiSelective(ConsistencyModel::Sc);
    for mode in [KernelMode::EpochParallel(4), KernelMode::LeapEpoch(4)] {
        let reference = run_with_kernel(engine, &workload, mode);
        assert!(reference.finished);
        for repeat in 1..3 {
            let again = run_with_kernel(engine, &workload, mode);
            assert_eq!(reference, again, "repeat {repeat} of the same {mode:?} run diverges");
        }
    }
}

#[test]
fn all_modes_are_distinct_configurations() {
    // Guard against the modes silently collapsing into one another (e.g. a
    // future refactor making batch_kernel imply dense_kernel). Note
    // EpochParallel(1) intentionally shares Batched's configuration: one
    // worker thread is the serial batched kernel.
    let mut seen = Vec::new();
    for mode in KernelMode::ALL {
        if mode == KernelMode::EpochParallel(1) {
            continue;
        }
        let mut cfg = MachineConfig::small_test(EngineKind::Conventional(ConsistencyModel::Sc));
        mode.apply(&mut cfg);
        let fingerprint =
            (cfg.dense_kernel, cfg.batch_kernel, cfg.leap_kernel, cfg.machine_threads);
        assert!(!seen.contains(&fingerprint), "{mode:?} duplicates another mode");
        seen.push(fingerprint);
    }
}
