//! Cross-crate integration tests: every ordering engine runs a real workload
//! on the full machine model, and the qualitative relationships the paper
//! reports hold on the reduced test configuration.

use ifence_sim::figures;
use invisifence_repro::prelude::*;

fn quick() -> ExperimentParams {
    let mut p = ExperimentParams::quick_test();
    p.instructions_per_core = 1_000;
    p
}

fn every_engine() -> Vec<EngineKind> {
    vec![
        EngineKind::Conventional(ConsistencyModel::Sc),
        EngineKind::Conventional(ConsistencyModel::Tso),
        EngineKind::Conventional(ConsistencyModel::Rmo),
        EngineKind::InvisiSelective(ConsistencyModel::Sc),
        EngineKind::InvisiSelective(ConsistencyModel::Tso),
        EngineKind::InvisiSelective(ConsistencyModel::Rmo),
        EngineKind::InvisiSelectiveTwoCkpt(ConsistencyModel::Sc),
        EngineKind::InvisiContinuous { commit_on_violate: false },
        EngineKind::InvisiContinuous { commit_on_violate: true },
        EngineKind::Aso(ConsistencyModel::Sc),
    ]
}

#[test]
fn every_engine_completes_every_preset_workload_sample() {
    // One (engine, workload) pair per workload keeps the runtime bounded while
    // still touching every preset and every engine over the suite.
    let params = quick();
    let workloads = presets::all_workloads();
    for (i, engine) in every_engine().into_iter().enumerate() {
        let workload = &workloads[i % workloads.len()];
        let summary = run_experiment(engine, workload, &params);
        assert!(summary.cycles > 0, "{}: no cycles simulated", engine.label());
        assert!(
            summary.counters.instructions_retired as usize >= params.instructions_per_core * 4,
            "{}: not all instructions retired on {}",
            engine.label(),
            workload.name()
        );
        // The five-way breakdown accounts for every attributed cycle.
        assert!(summary.breakdown.total() > 0);
    }
}

#[test]
fn conventional_ordering_stalls_shrink_as_the_model_weakens() {
    let params = quick();
    let workload = presets::apache().into();
    let sc = run_experiment(EngineKind::Conventional(ConsistencyModel::Sc), &workload, &params);
    let tso = run_experiment(EngineKind::Conventional(ConsistencyModel::Tso), &workload, &params);
    let rmo = run_experiment(EngineKind::Conventional(ConsistencyModel::Rmo), &workload, &params);

    let penalty =
        |s: &RunSummary| s.breakdown.get(CycleClass::SbDrain) + s.breakdown.get(CycleClass::SbFull);
    assert!(
        penalty(&sc) > penalty(&rmo),
        "SC must pay more ordering stalls than RMO ({} vs {})",
        penalty(&sc),
        penalty(&rmo)
    );
    assert!(
        sc.cycles as f64 >= 0.95 * rmo.cycles as f64,
        "relaxing the model must not slow execution down materially"
    );
    assert!(
        penalty(&sc) > penalty(&tso) / 2,
        "TSO must not pay materially more ordering stalls than SC ({} vs {})",
        penalty(&sc),
        penalty(&tso)
    );
    // Figure 1's defining observation: even RMO still pays some ordering cost
    // on lock-heavy commercial workloads.
    assert!(penalty(&rmo) > 0, "RMO still stalls at fences and atomics");
}

#[test]
fn invisifence_eliminates_store_buffer_stalls() {
    let params = quick();
    let workload = presets::oltp_db2().into();
    let rmo = run_experiment(EngineKind::Conventional(ConsistencyModel::Rmo), &workload, &params);
    let invisi =
        run_experiment(EngineKind::InvisiSelective(ConsistencyModel::Rmo), &workload, &params);
    let drains = |s: &RunSummary| s.breakdown.get(CycleClass::SbDrain);
    assert!(
        drains(&invisi) * 4 < drains(&rmo).max(1),
        "InvisiFence-RMO should remove almost all SB-drain stalls ({} vs {})",
        drains(&invisi),
        drains(&rmo)
    );
    assert!(invisi.counters.speculations_started > 0);
    assert!(invisi.counters.speculations_committed > 0);
}

#[test]
fn continuous_mode_speculates_almost_always_and_selective_rmo_rarely() {
    let params = quick();
    let workload = presets::barnes().into();
    let cont = run_experiment(
        EngineKind::InvisiContinuous { commit_on_violate: false },
        &workload,
        &params,
    );
    let selective =
        run_experiment(EngineKind::InvisiSelective(ConsistencyModel::Rmo), &workload, &params);
    assert!(
        cont.speculation_fraction > 0.85,
        "continuous mode should speculate nearly always, got {:.2}",
        cont.speculation_fraction
    );
    assert!(
        selective.speculation_fraction < 0.5,
        "selective RMO speculates only around fences/atomics, got {:.2}",
        selective.speculation_fraction
    );
}

#[test]
fn commit_on_violate_reduces_violation_cycles_of_continuous_mode() {
    let mut params = quick();
    params.instructions_per_core = 1_500;
    let workload = presets::zeus().into();
    let plain = run_experiment(
        EngineKind::InvisiContinuous { commit_on_violate: false },
        &workload,
        &params,
    );
    let cov = run_experiment(
        EngineKind::InvisiContinuous { commit_on_violate: true },
        &workload,
        &params,
    );
    let violation = |s: &RunSummary| s.breakdown.get(CycleClass::Violation);
    assert!(
        violation(&cov) as f64 <= 1.1 * violation(&plain) as f64 + 100.0,
        "CoV must not materially increase violation cycles ({} vs {})",
        violation(&cov),
        violation(&plain)
    );
}

#[test]
fn figure_drivers_produce_complete_tables_on_a_small_run() {
    let mut params = quick();
    params.instructions_per_core = 600;
    let workloads: Vec<Workload> = vec![presets::barnes().into(), presets::dss_db2().into()];
    let (data1, table1) = figures::figure1(&workloads, &params);
    assert_eq!(data1.per_workload.len(), 2);
    assert_eq!(table1.len(), 6);

    let matrix = figures::selective_matrix(&workloads, &params);
    assert_eq!(figures::figure8(&matrix).len(), 2);
    assert_eq!(figures::figure9(&matrix).len(), 12);
    assert_eq!(figures::figure10(&matrix).len(), 6);

    let (_, table11) = figures::figure11(&workloads, &params);
    assert_eq!(table11.len(), 6);
    let (_, table12) = figures::figure12(&workloads, &params);
    assert_eq!(table12.len(), 10);
}

#[test]
fn static_tables_match_the_paper() {
    use invisifence_repro::consistency::figure2_rows;
    use invisifence_repro::invisifence::{figure4_rows, figure5_rows};
    assert_eq!(figure2_rows().len(), 3);
    assert_eq!(figure4_rows().len(), 4);
    assert_eq!(figure5_rows().len(), 9);
    let cfg = MachineConfig::with_engine(EngineKind::InvisiSelective(ConsistencyModel::Rmo));
    assert!(cfg.speculative_state_bytes() <= 1536, "the ~1 KB hardware budget claim");
}
