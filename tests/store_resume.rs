//! The experiment store's acceptance properties, end to end:
//!
//! 1. A figure-suite run **interrupted halfway** resumes from the store and
//!    produces byte-identical figure data and tables to an uninterrupted
//!    cold run.
//! 2. A **warm re-run** of the same command performs zero simulations
//!    (asserted through the cache-hit counters).
//! 3. Cells are shared **across figures**: Figure 12 reuses conventional
//!    SC/RMO cells that Figure 1 already simulated.

use ifence_sim::figures::{self, run_all_figures, FigureContext};
use ifence_sim::ExperimentParams;
use ifence_store::ExperimentStore;
use ifence_workloads::{presets, Workload};
use std::path::PathBuf;

fn params() -> ExperimentParams {
    let mut p = ExperimentParams::quick_test();
    p.instructions_per_core = 900;
    p
}

fn suite() -> Vec<Workload> {
    // One steady preset and the phased scenario: both trace paths cross the
    // store.
    vec![presets::barnes().into(), Workload::from(presets::server_swings())]
}

fn fresh_store(tag: &str) -> (ExperimentStore, PathBuf) {
    let root =
        std::env::temp_dir().join(format!("ifence-resume-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    (ExperimentStore::open(&root).expect("store opens"), root)
}

#[test]
fn interrupted_figure_run_resumes_and_matches_cold_run_byte_for_byte() {
    let params = params();
    let workloads = suite();

    // Reference: an uninterrupted cold run in its own store.
    let (cold_store, cold_root) = fresh_store("cold");
    let cold_ctx = FigureContext::with_store(&params, &cold_store);
    let (cold_sections, cold_cache) = run_all_figures(&workloads, &cold_ctx);
    // 17 paper-figure cells plus the L2-capacity sweep's 8 (4 capacity
    // points × 2 engines) per workload.
    assert_eq!(cold_cache.hits + cold_cache.misses, 25 * workloads.len());
    assert!(cold_cache.misses > 0, "a cold run simulates");
    // Figures share cells (e.g. conventional SC appears in Figures 1, 8 and
    // 12), so even a cold *suite* run gets intra-suite hits.
    assert!(cold_cache.hits > 0, "figures share cells within one suite run");

    // "Interrupted" run: the process died after Figure 1 and the Figures
    // 8-10 matrix; only their cells were persisted.
    let (resume_store, resume_root) = fresh_store("resume");
    let resume_ctx = FigureContext::with_store(&params, &resume_store);
    let _ = figures::figure1_in(&workloads, &resume_ctx);
    let _ = figures::selective_matrix_in(&workloads, &resume_ctx);
    let persisted_midway = resume_store.len();
    assert!(persisted_midway > 0, "the interrupted run left cells behind");

    // Resume: the full suite against the half-filled store.
    let (resumed_sections, resumed_cache) = run_all_figures(&workloads, &resume_ctx);
    assert!(
        resumed_cache.hits >= persisted_midway,
        "resume must serve at least the persisted cells from the store \
         ({} hits, {persisted_midway} persisted)",
        resumed_cache.hits
    );
    assert!(
        resumed_cache.misses < cold_cache.misses,
        "resume must simulate strictly less than the cold run"
    );

    // Byte-identical output: every section title and rendered table.
    assert_eq!(cold_sections.len(), resumed_sections.len());
    for ((cold_title, cold_table), (resumed_title, resumed_table)) in
        cold_sections.iter().zip(&resumed_sections)
    {
        assert_eq!(cold_title, resumed_title);
        assert_eq!(
            cold_table.to_string(),
            resumed_table.to_string(),
            "{cold_title}: resumed table differs from cold run"
        );
    }

    // And the underlying figure data (not just its rendering) is equal.
    let cold_data = figures::selective_matrix_in(&workloads, &cold_ctx);
    let resumed_data = figures::selective_matrix_in(&workloads, &resume_ctx);
    assert_eq!(cold_data.configs, resumed_data.configs);
    assert_eq!(
        cold_data.per_workload, resumed_data.per_workload,
        "per-cell summaries must be byte-identical after a resume"
    );

    std::fs::remove_dir_all(&cold_root).unwrap();
    std::fs::remove_dir_all(&resume_root).unwrap();
}

#[test]
fn warm_rerun_of_the_full_suite_performs_zero_simulations() {
    let params = params();
    let workloads = suite();
    let (store, root) = fresh_store("warm");
    let ctx = FigureContext::with_store(&params, &store);

    let (cold_sections, _) = run_all_figures(&workloads, &ctx);
    let entries_after_cold = store.len();

    let (warm_sections, warm_cache) = run_all_figures(&workloads, &ctx);
    assert_eq!(warm_cache.misses, 0, "a warm re-run must not simulate anything");
    assert_eq!(warm_cache.hits, 25 * workloads.len(), "every lookup must hit");
    assert!(warm_cache.all_hits());
    assert_eq!(store.len(), entries_after_cold, "a warm run adds no entries");
    for ((_, cold_table), (_, warm_table)) in cold_sections.iter().zip(&warm_sections) {
        assert_eq!(cold_table.to_string(), warm_table.to_string());
    }

    // The suite's manifests are all present and resolvable.
    let names = store.manifest_names().unwrap();
    for expected in ["figure-1", "figures-8-10", "figure-11", "figure-12", "l2-capacity-unbounded"]
    {
        assert!(names.iter().any(|n| n == expected), "missing manifest {expected}: {names:?}");
        let manifest = store.read_manifest(expected).unwrap().expect("manifest readable");
        store.resolve(&manifest).expect("manifest cells all in store");
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn figure_cells_are_shared_across_figures() {
    let params = params();
    let workloads = suite();
    let (store, root) = fresh_store("shared");
    let ctx = FigureContext::with_store(&params, &store);

    let (fig1, _) = figures::figure1_in(&workloads, &ctx);
    assert_eq!(fig1.cache.misses, 3 * workloads.len(), "cold Figure 1 simulates everything");

    // Figure 12 includes conventional SC and RMO, which Figure 1 already
    // simulated: 2 of its 5 engines per workload come from the store.
    let (fig12, _) = figures::figure12_in(&workloads, &ctx);
    assert_eq!(fig12.cache.hits, 2 * workloads.len());
    assert_eq!(fig12.cache.misses, 3 * workloads.len());
    std::fs::remove_dir_all(&root).unwrap();
}
