//! Equivalence guard for the finite-L2 refactor.
//!
//! The fabric used to model the shared L2 as an infinite map whose memory
//! latency was paid only on the first touch of a block. The refactor replaced
//! that with a banked, finite, set-associative L2 (directory state embedded
//! in its tags) over an explicit DRAM tier. Three properties pin the
//! refactor down:
//!
//! 1. **Pre-refactor byte-equivalence** — with the L2 capacity set
//!    effectively infinite (`size_bytes = 0`), cycle counts are *identical*
//!    to the pre-refactor fabric for every engine kind × Barnes/Apache. The
//!    golden values below were captured by running the pre-refactor tree at
//!    exactly these parameters (small test machine, 700 instructions/core,
//!    default seed, 30 M-cycle limit).
//! 2. **Capacity neutrality** — a finite L2 large enough to hold the working
//!    set produces `MachineResult`s byte-identical to the unbounded one: the
//!    capacity machinery adds no timing perturbation until it is exercised.
//! 3. **Capacity pressure is real** — with a small L2, large-working-set
//!    workloads see non-zero capacity misses, evictions and inclusion
//!    recalls, and the stall-breakdown invariant (the slowest core's bucket
//!    sum equals executed cycles) still holds exactly.

use ifence_sim::{Machine, MachineResult};
use invisifence_repro::prelude::*;

const MAX_CYCLES: u64 = 30_000_000;
const INSTRUCTIONS: usize = 700;

/// Pre-refactor cycle counts: (engine label, workload, cycles), captured on
/// the flat-map fabric at the parameters used by `run`.
const GOLDEN_CYCLES: [(&str, &str, u64); 28] = [
    ("sc", "Barnes", 1568),
    ("tso", "Barnes", 3260),
    ("rmo", "Barnes", 1121),
    ("Invisi_sc", "Barnes", 1727),
    ("Invisi_tso", "Barnes", 1559),
    ("Invisi_rmo", "Barnes", 1121),
    ("Invisi_sc-2ckpt", "Barnes", 1393),
    ("Invisi_tso-2ckpt", "Barnes", 1988),
    ("Invisi_rmo-2ckpt", "Barnes", 1121),
    ("Invisi_cont", "Barnes", 6874),
    ("Invisi_cont_CoV", "Barnes", 6874),
    ("ASOsc", "Barnes", 1515),
    ("ASOtso", "Barnes", 1515),
    ("ASOrmo", "Barnes", 1121),
    ("sc", "Apache", 3344),
    ("tso", "Apache", 5171),
    ("rmo", "Apache", 1537),
    ("Invisi_sc", "Apache", 3711),
    ("Invisi_tso", "Apache", 3068),
    ("Invisi_rmo", "Apache", 1644),
    ("Invisi_sc-2ckpt", "Apache", 2834),
    ("Invisi_tso-2ckpt", "Apache", 2503),
    ("Invisi_rmo-2ckpt", "Apache", 1649),
    ("Invisi_cont", "Apache", 7802),
    ("Invisi_cont_CoV", "Apache", 8923),
    ("ASOsc", "Apache", 3599),
    ("ASOtso", "Apache", 3197),
    ("ASOrmo", "Apache", 1431),
];

fn run_with_leap(
    engine: EngineKind,
    workload: &WorkloadSpec,
    l2_size_bytes: usize,
    leap: bool,
) -> MachineResult {
    let mut cfg = MachineConfig::small_test(engine);
    cfg.l2.size_bytes = l2_size_bytes;
    cfg.leap_kernel = leap;
    let programs = workload.generate(cfg.cores, INSTRUCTIONS, cfg.seed);
    Machine::new(cfg, programs).expect("valid config").into_result(MAX_CYCLES)
}

/// The default run uses leap execution (the production configuration), so
/// every golden comparison below also pins the leap kernel to the
/// pre-refactor fabric's cycle counts.
fn run(engine: EngineKind, workload: &WorkloadSpec, l2_size_bytes: usize) -> MachineResult {
    run_with_leap(engine, workload, l2_size_bytes, true)
}

#[test]
fn unbounded_l2_reproduces_the_pre_refactor_fabric() {
    for workload in [presets::barnes(), presets::apache()] {
        for engine in EngineKind::all() {
            let result = run(engine, &workload, 0);
            let label = format!("{}/{}", engine.label(), workload.name);
            assert!(result.finished, "{label}: run must finish");
            let golden = GOLDEN_CYCLES
                .iter()
                .find(|(e, w, _)| *e == engine.label() && *w == workload.name)
                .unwrap_or_else(|| panic!("{label}: no golden recorded"))
                .2;
            assert_eq!(
                result.cycles, golden,
                "{label}: the unbounded-L2 fabric must be cycle-identical to the \
                 pre-refactor flat-map fabric"
            );
            assert!(
                !result.fabric.had_capacity_pressure(),
                "{label}: unbounded L2 never evicts or recalls: {:?}",
                result.fabric
            );
            assert!(result.fabric.l2_misses > 0, "{label}: cold misses are still DRAM fetches");
        }
    }
}

#[test]
fn finite_l2_that_fits_the_working_set_is_byte_identical_to_unbounded() {
    // 16 MB dwarfs every test workload's footprint, so the finite machinery
    // (banked sets, LRU, victim selection) must be timing-neutral: the whole
    // MachineResult — cycles, per-core counters and breakdowns, fabric
    // counters, retired-load values — is byte-identical to the unbounded run.
    for workload in [presets::barnes(), presets::apache()] {
        for engine in EngineKind::all() {
            let unbounded = run(engine, &workload, 0);
            let finite = run(engine, &workload, 16 * 1024 * 1024);
            assert_eq!(
                unbounded,
                finite,
                "{}/{}: an unexercised finite L2 must not perturb anything",
                engine.label(),
                workload.name
            );
        }
    }
}

#[test]
fn leap_execution_is_byte_identical_across_l2_capacities() {
    // Leap legs: capacity pressure exercises eviction/recall deliveries that
    // interrupt leap-eligible runs mid-flight, so both an unbounded and a
    // pressured L2 must produce the same MachineResult with leaping on and
    // off.
    for engine in EngineKind::all() {
        for (l2_size, tier) in [(0, "unbounded"), (16 * 1024, "16KB")] {
            let leap = run_with_leap(engine, &presets::apache(), l2_size, true);
            let stepped = run_with_leap(engine, &presets::apache(), l2_size, false);
            assert_eq!(
                leap,
                stepped,
                "{}/Apache@{tier}: leap execution must not perturb the L2 hierarchy",
                engine.label()
            );
        }
    }
}

#[test]
fn small_l2_sees_capacity_misses_and_recalls_on_large_working_sets() {
    // A 16 KB shared L2 (256 blocks) against Apache's multi-thousand-block
    // footprint: capacity misses, evictions and inclusion recalls must all
    // occur, the recalled cores must observe them, and the run must still
    // finish with exact cycle accounting.
    for engine in [
        EngineKind::Conventional(ConsistencyModel::Rmo),
        EngineKind::InvisiSelective(ConsistencyModel::Rmo),
    ] {
        let result = run(engine, &presets::apache(), 16 * 1024);
        let label = format!("{}/Apache@16KB", engine.label());
        assert!(result.finished, "{label}: run must finish under capacity pressure");
        assert!(!result.deadlocked, "{label}: no deadlock");
        let fabric = &result.fabric;
        let l2_blocks = (16 * 1024 / 64) as u64;
        assert!(
            fabric.l2_misses > l2_blocks,
            "{label}: misses ({}) must exceed the L2's {l2_blocks}-block capacity — \
             capacity misses, not just cold ones",
            fabric.l2_misses
        );
        assert!(fabric.had_capacity_pressure(), "{label}: capacity pressure expected: {fabric:?}");
        assert!(fabric.l2_evictions > 0, "{label}: evictions must occur: {fabric:?}");
        assert!(fabric.l2_recalls > 0, "{label}: inclusion recalls must occur: {fabric:?}");
        assert!(fabric.dram_reads >= fabric.l2_misses, "{label}: every miss reads DRAM");
        let recalls_received: u64 =
            result.per_core.iter().map(|c| c.counters.l2_recalls_received).sum();
        assert!(recalls_received > 0, "{label}: cores must observe the recalls");

        // The stall-breakdown invariant survives capacity pressure: the
        // slowest core accounts for exactly every executed cycle.
        let slowest = result.per_core.iter().map(|c| c.breakdown.total()).max().unwrap();
        assert_eq!(
            slowest,
            result.cycles - 1,
            "{label}: breakdown buckets must sum exactly to executed cycles"
        );
    }
}

#[test]
fn shrinking_the_l2_never_speeds_up_a_run() {
    // Monotonicity smoke: the same workload through 16 KB / 256 KB /
    // unbounded L2s — miss counts must not increase with capacity, and the
    // tiny configuration must be strictly slower than the unbounded one.
    let engine = EngineKind::Conventional(ConsistencyModel::Rmo);
    let tiny = run(engine, &presets::apache(), 16 * 1024);
    let small = run(engine, &presets::apache(), 256 * 1024);
    let unbounded = run(engine, &presets::apache(), 0);
    assert!(tiny.fabric.l2_misses >= small.fabric.l2_misses);
    assert!(small.fabric.l2_misses >= unbounded.fabric.l2_misses);
    assert!(
        tiny.cycles > unbounded.cycles,
        "16 KB ({}) must be slower than unbounded ({})",
        tiny.cycles,
        unbounded.cycles
    );
}
