//! Property-style tests on the core data structures and their invariants.
//!
//! Each property is checked over many randomized cases driven by the
//! workspace's own deterministic [`TraceRng`] (the workspace builds offline,
//! without proptest), so failures reproduce exactly from the printed case
//! seed.

use ifence_coherence::EventQueue;
use ifence_mem::{BlockData, LineState, Ring, SetAssocCache, SpecBitArray, StoreBuffer};
use ifence_types::{Addr, BlockAddr, CacheConfig, InterconnectConfig};
use ifence_workloads::TraceRng;

const CASES: u64 = 64;

fn block(byte: u64) -> BlockAddr {
    BlockAddr::containing(Addr::new(byte), 64)
}

fn random_vec(rng: &mut TraceRng, max_len: usize, bound: u64) -> Vec<u64> {
    let len = rng.range_usize(0..max_len + 1);
    (0..len).map(|_| rng.range_u64(0..bound)).collect()
}

/// Flash clear always leaves every bit clear, no matter the set/clear history.
#[test]
fn spec_bits_flash_clear_resets_everything() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(case);
        let ops = random_vec(&mut rng, 200, 256);
        let mut bits = SpecBitArray::new(256);
        for (i, op) in ops.iter().enumerate() {
            if i % 7 == 3 {
                bits.clear(*op as usize);
            } else {
                bits.set(*op as usize);
            }
        }
        bits.flash_clear();
        assert!(bits.none_set(), "case {case}");
        assert_eq!(bits.count_set(), 0, "case {case}");
    }
}

/// The set-bit log never reports a bit that `get` says is clear, and
/// `count_set` matches a brute-force count.
#[test]
fn spec_bits_log_is_consistent() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x1000 + case);
        let sets = random_vec(&mut rng, 100, 64);
        let clears = random_vec(&mut rng, 100, 64);
        let mut bits = SpecBitArray::new(64);
        for s in &sets {
            bits.set(*s as usize);
        }
        for c in &clears {
            bits.clear(*c as usize);
        }
        let brute: usize = (0..64).filter(|i| bits.get(*i)).count();
        assert_eq!(bits.count_set(), brute, "case {case}");
        for idx in bits.iter_set() {
            assert!(bits.get(idx), "case {case}: logged bit {idx} is clear");
        }
    }
}

/// A coalescing store buffer never exceeds its capacity, never merges across
/// the speculative/non-speculative boundary, and forwarding always returns
/// the youngest value written to a word.
#[test]
fn coalescing_store_buffer_invariants() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x2000 + case);
        let n = rng.range_usize(1..64);
        let capacity = 8;
        let mut sb = StoreBuffer::new_coalescing(capacity, 64);
        // Forwarding is defined to prefer the highest-epoch entry for a word
        // (speculative entries are younger than non-speculative ones in real
        // executions); model exactly that rule here.
        let mut per_epoch: std::collections::HashMap<(u64, u64, i16), u64> =
            std::collections::HashMap::new();
        for _ in 0..n {
            let blk_idx = rng.range_u64(0..32);
            let word = rng.range_u64(0..8);
            let value = rng.next_u64();
            let epoch = if rng.bool(0.5) { Some(rng.range_u64(0..2) as u8) } else { None };
            let addr = Addr::new(blk_idx * 64 + word * 8);
            if sb.push(addr, value, epoch).is_ok() {
                let key = (blk_idx, word, epoch.map(|e| e as i16).unwrap_or(-1));
                per_epoch.insert(key, value);
                assert!(sb.len() <= capacity, "case {case}");
            }
            let expected = (-1..2).rev().find_map(|e| per_epoch.get(&(blk_idx, word, e)).copied());
            if let Some(expected) = expected {
                assert_eq!(sb.forward(addr), Some(expected), "case {case}");
            }
        }
        // Epoch-exact invalidation removes exactly the tagged entries.
        let spec_before = sb.speculative_len();
        let removed = sb.flash_invalidate_exact(0) + sb.flash_invalidate_exact(1);
        assert_eq!(removed, spec_before, "case {case}");
        assert!(!sb.has_speculative(), "case {case}");
    }
}

/// A FIFO store buffer drains blocks in insertion order.
#[test]
fn fifo_store_buffer_preserves_order() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x3000 + case);
        let len = rng.range_usize(1..32);
        let blocks: Vec<u64> = (0..len).map(|_| rng.range_u64(0..16)).collect();
        let mut sb = StoreBuffer::new_fifo(64, 64);
        for (i, b) in blocks.iter().enumerate() {
            sb.push(Addr::new(b * 64), i as u64, None).unwrap();
        }
        let mut drained = Vec::new();
        while let Some((blk, _)) = sb.drain_candidates().first().copied() {
            let entry = sb.drain_block(blk).unwrap();
            drained.push(entry.block.number());
        }
        assert!(sb.is_empty(), "case {case}");
        // The sequence of drained blocks is the insertion sequence with
        // consecutive duplicates collapsed: collapsing only merges *adjacent*
        // same-block runs, so the drained list cannot be longer than the
        // insertion list and must preserve relative order of first
        // occurrences.
        let mut expected = Vec::new();
        for b in &blocks {
            if expected.last() != Some(b) {
                expected.push(*b);
            }
        }
        assert_eq!(drained, expected, "case {case}");
    }
}

/// The cache never holds two lines for the same block, and its valid-line
/// count never exceeds its capacity.
#[test]
fn cache_uniqueness_and_capacity() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x4000 + case);
        let n = rng.range_usize(1..300);
        let cfg = CacheConfig {
            size_bytes: 2 * 1024,
            associativity: 2,
            block_bytes: 64,
            hit_latency: 2,
            ports: 1,
            mshrs: 4,
            victim_entries: 0,
        };
        let capacity = cfg.blocks();
        let mut cache = SetAssocCache::new(&cfg);
        for _ in 0..n {
            let b = block(rng.range_u64(0..128) * 64);
            cache.fill(b, LineState::Shared, BlockData::zeroed());
            assert!(cache.valid_lines() <= capacity, "case {case}");
            assert!(cache.contains(b), "case {case}: a just-filled block is resident");
        }
        let mut seen = std::collections::HashSet::new();
        for (blk, _) in cache.iter_valid() {
            assert!(seen.insert(blk.number()), "case {case}: duplicate resident block");
        }
    }
}

/// The flat ring buffer behaves exactly like a `VecDeque` under arbitrary
/// interleavings of pushes and pops, across many head-pointer wraparounds:
/// same length, same elements at every index, same front, same iteration
/// order in both directions.
#[test]
fn ring_matches_deque_model_across_wraparound() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x6000 + case);
        let capacity = rng.range_usize(1..12);
        let mut ring: Ring<u64> = Ring::with_capacity(capacity);
        let mut model: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        for step in 0..400 {
            if !ring.is_full() && rng.bool(0.55) {
                let v = rng.next_u64();
                ring.push_back(v);
                model.push_back(v);
            } else if !ring.is_empty() {
                assert_eq!(ring.pop_front(), model.pop_front(), "case {case} step {step}");
            }
            assert_eq!(ring.len(), model.len(), "case {case} step {step}");
            assert_eq!(ring.is_empty(), model.is_empty(), "case {case} step {step}");
            assert_eq!(ring.front().copied(), model.front().copied(), "case {case} step {step}");
            for i in 0..model.len() {
                assert_eq!(ring.get(i), model.get(i), "case {case} step {step} index {i}");
            }
            let forward: Vec<u64> = ring.iter().copied().collect();
            assert_eq!(forward, model.iter().copied().collect::<Vec<_>>(), "case {case}");
            let backward: Vec<u64> = ring.iter().rev().copied().collect();
            assert_eq!(backward, model.iter().rev().copied().collect::<Vec<_>>(), "case {case}");
        }
    }
}

/// Full/empty boundary behaviour: a ring filled to capacity reports full
/// (and only then), drains back to empty in order, and stays usable across
/// repeated fill/drain rounds that leave the head at arbitrary offsets.
#[test]
fn ring_full_and_empty_boundaries_hold_at_any_head_offset() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x7000 + case);
        let capacity = rng.range_usize(1..10);
        let mut ring: Ring<u64> = Ring::with_capacity(capacity);
        let mut next = 0u64;
        for round in 0..12 {
            // Shift the head by a partial fill/drain so each round starts at
            // a different offset.
            let offset = rng.range_usize(0..capacity);
            for _ in 0..offset {
                ring.push_back(next);
                next += 1;
            }
            for _ in 0..offset {
                ring.pop_front();
            }
            assert!(ring.is_empty(), "case {case} round {round}");
            assert_eq!(ring.len(), 0, "case {case} round {round}");
            for i in 0..capacity {
                assert!(!ring.is_full(), "case {case} round {round}: full before capacity");
                ring.push_back(next + i as u64);
                assert_eq!(ring.len(), i + 1, "case {case} round {round}");
            }
            assert!(ring.is_full(), "case {case} round {round}: capacity reached");
            for i in 0..capacity {
                assert_eq!(
                    ring.pop_front(),
                    Some(next + i as u64),
                    "case {case} round {round}: FIFO order across the boundary"
                );
            }
            next += capacity as u64;
            assert!(ring.is_empty() && !ring.is_full(), "case {case} round {round}");
        }
    }
}

/// `retain` models rollback truncation (the ROB's `squash_from`): dropping
/// every element from a random program index onward keeps the surviving
/// prefix in order, reports the exact removal count, and leaves the ring
/// usable for further pushes — including when the squash empties it.
#[test]
fn ring_retain_models_rollback_truncation() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x8000 + case);
        let capacity = rng.range_usize(1..16);
        let mut ring: Ring<u64> = Ring::with_capacity(capacity);
        // Rotate the head so the truncation crosses the wrap in many cases.
        let offset = rng.range_usize(0..capacity);
        for i in 0..offset {
            ring.push_back(i as u64);
        }
        for _ in 0..offset {
            ring.pop_front();
        }
        let len = rng.range_usize(0..capacity + 1);
        for i in 0..len {
            ring.push_back(i as u64);
        }
        let cut = rng.range_u64(0..len as u64 + 1);
        let removed = ring.retain(|&v| v < cut);
        let kept = (len as u64).min(cut);
        assert_eq!(removed, len - kept as usize, "case {case}: removal count");
        let survivors: Vec<u64> = ring.iter().copied().collect();
        assert_eq!(survivors, (0..kept).collect::<Vec<_>>(), "case {case}: ordered prefix");
        // The ring stays fully usable after the squash.
        while !ring.is_full() {
            ring.push_back(u64::MAX);
        }
        assert_eq!(ring.len(), capacity, "case {case}: refillable to capacity");
    }
}

/// The hierarchical timing wheel pops in exactly the order a binary-heap
/// oracle does — cycle-major, schedule-order-minor — under random bursts of
/// near-future, duplicate-cycle, at-or-before-now and far-future (overflow
/// level) schedules interleaved with random time advances, and `next_due` is
/// always the oracle's exact minimum.
#[test]
fn event_wheel_matches_a_binary_heap_oracle() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x9000 + case);
        let mut wheel: EventQueue<u64> = EventQueue::new();
        let mut oracle: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for step in 0..300 {
            let burst = rng.range_usize(0..5);
            for _ in 0..burst {
                let time = match rng.range_u64(0..10) {
                    // Due immediately (the fabric's zero-hop fills).
                    0 => now,
                    // The wheel's level-0/1 windows (directory + hop latencies).
                    1..=6 => now + rng.range_u64(0..200),
                    7 | 8 => now + rng.range_u64(0..5_000),
                    // Beyond every wheel level: the overflow path.
                    _ => now + rng.range_u64(0..400_000),
                };
                wheel.schedule(time, seq);
                oracle.push(Reverse((time, seq)));
                seq += 1;
            }
            assert_eq!(wheel.len(), oracle.len(), "case {case} step {step}");
            assert_eq!(
                wheel.next_due(),
                oracle.peek().map(|Reverse((t, _))| *t),
                "case {case} step {step}: next_due must be exact"
            );
            now += rng.range_u64(0..300);
            if rng.bool(0.1) {
                // Occasionally jump far, forcing multi-window drains and
                // cascades in one advance.
                now += rng.range_u64(0..100_000);
            }
            while let Some((time, value)) = wheel.pop_due(now) {
                assert!(time <= now, "case {case} step {step}: popped a future event");
                let Reverse(expected) = oracle.pop().expect("oracle has the event");
                assert_eq!((time, value), expected, "case {case} step {step}: pop order");
            }
            let stale = oracle.peek().is_some_and(|Reverse((t, _))| *t <= now);
            assert!(!stale, "case {case} step {step}: wheel left a due event unpopped");
        }
        // Drain the tails so the full order is compared, not just the prefix.
        now = now.saturating_add(500_000);
        while let Some((time, value)) = wheel.pop_due(now) {
            let Reverse(expected) = oracle.pop().expect("oracle has the event");
            assert_eq!((time, value), expected, "case {case}: tail pop order");
        }
        assert!(oracle.is_empty() && wheel.is_empty(), "case {case}: both drained");
    }
}

/// The precomputed routing table equals the arithmetic torus routing for
/// every (from, to) pair on every width×height up to 16×16 — including the
/// wrap-around columns and rows, where the shortest path crosses the torus
/// seam.
#[test]
fn routing_table_matches_arithmetic_routing_up_to_16x16() {
    let mut ic = InterconnectConfig::paper_torus();
    ic.hop_latency = 7; // an odd latency, so hops*latency exposes any mixup
    for width in 1..=16usize {
        for height in 1..=16usize {
            ic.mesh_width = width;
            ic.mesh_height = height;
            let table = ic.routing_table();
            assert_eq!(table.nodes(), width * height);
            for from in 0..table.nodes() {
                for to in 0..table.nodes() {
                    assert_eq!(
                        table.hops(from, to),
                        ic.hops(from, to),
                        "{width}x{height} hops {from}->{to}"
                    );
                    assert_eq!(
                        table.latency(from, to),
                        ic.latency(from, to),
                        "{width}x{height} latency {from}->{to}"
                    );
                }
            }
            // Wrap-around spot checks: torus neighbours across the seam are
            // one hop apart.
            if width > 1 {
                assert_eq!(table.hops(0, width - 1), 1, "{width}x{height} row wrap");
            }
            if height > 1 {
                assert_eq!(table.hops(0, (height - 1) * width), 1, "{width}x{height} column wrap");
            }
        }
    }
}

/// Flash-invalidating speculatively-written lines removes exactly those lines
/// and clears every speculative mark.
#[test]
fn cache_abort_invalidates_only_written_lines() {
    for case in 0..CASES {
        let mut rng = TraceRng::seed_from_u64(0x5000 + case);
        let reads = random_vec(&mut rng, 20, 32);
        let writes = random_vec(&mut rng, 20, 32);
        let cfg = CacheConfig {
            size_bytes: 4 * 1024,
            associativity: 4,
            block_bytes: 64,
            hit_latency: 2,
            ports: 1,
            mshrs: 4,
            victim_entries: 0,
        };
        let mut cache = SetAssocCache::new(&cfg);
        for r in &reads {
            let b = block(r * 64);
            cache.fill(b, LineState::Shared, BlockData::zeroed());
            cache.mark_spec_read(b, 0);
        }
        for w in &writes {
            let b = block(w * 64);
            cache.fill(b, LineState::Modified, BlockData::zeroed());
            cache.mark_spec_written(b, 0);
        }
        let invalidated = cache.flash_invalidate_written(0);
        for b in &invalidated {
            assert_eq!(cache.state(*b), LineState::Invalid, "case {case}");
        }
        assert!(!cache.has_spec_lines(), "case {case}");
        // Read-only speculative blocks survive the abort (they are simply
        // unmarked), unless the same block was also written.
        for r in &reads {
            if !writes.contains(r) {
                assert!(cache.state(block(r * 64)).readable(), "case {case}");
            }
        }
    }
}
