//! Property-based tests on the core data structures and their invariants.

use ifence_mem::{BlockData, LineState, SetAssocCache, SpecBitArray, StoreBuffer};
use ifence_types::{Addr, BlockAddr, CacheConfig};
use proptest::prelude::*;

fn block(byte: u64) -> BlockAddr {
    BlockAddr::containing(Addr::new(byte), 64)
}

proptest! {
    /// Flash clear always leaves every bit clear, no matter the set/clear history.
    #[test]
    fn spec_bits_flash_clear_resets_everything(ops in proptest::collection::vec(0usize..256, 0..200)) {
        let mut bits = SpecBitArray::new(256);
        for (i, op) in ops.iter().enumerate() {
            if i % 7 == 3 {
                bits.clear(*op);
            } else {
                bits.set(*op);
            }
        }
        bits.flash_clear();
        prop_assert!(bits.none_set());
        prop_assert_eq!(bits.count_set(), 0);
    }

    /// The set-bit log never reports a bit that `get` says is clear, and
    /// `count_set` matches a brute-force count.
    #[test]
    fn spec_bits_log_is_consistent(sets in proptest::collection::vec(0usize..64, 0..100),
                                   clears in proptest::collection::vec(0usize..64, 0..100)) {
        let mut bits = SpecBitArray::new(64);
        for s in &sets {
            bits.set(*s);
        }
        for c in &clears {
            bits.clear(*c);
        }
        let brute: usize = (0..64).filter(|i| bits.get(*i)).count();
        prop_assert_eq!(bits.count_set(), brute);
        for idx in bits.iter_set() {
            prop_assert!(bits.get(idx));
        }
    }

    /// A coalescing store buffer never exceeds its capacity, never merges
    /// across the speculative/non-speculative boundary, and forwarding always
    /// returns the youngest value written to a word.
    #[test]
    fn coalescing_store_buffer_invariants(
        stores in proptest::collection::vec((0u64..32, 0u64..8, any::<u64>(), proptest::option::of(0u8..2)), 1..64)
    ) {
        let capacity = 8;
        let mut sb = StoreBuffer::new_coalescing(capacity, 64);
        // Forwarding is defined to prefer the highest-epoch entry for a word
        // (speculative entries are younger than non-speculative ones in real
        // executions); model exactly that rule here.
        let mut per_epoch: std::collections::HashMap<(u64, u64, i16), u64> =
            std::collections::HashMap::new();
        for (blk_idx, word, value, epoch) in stores {
            let addr = Addr::new(blk_idx * 64 + word * 8);
            if sb.push(addr, value, epoch).is_ok() {
                let key = (blk_idx, word, epoch.map(|e| e as i16).unwrap_or(-1));
                per_epoch.insert(key, value);
                prop_assert!(sb.len() <= capacity);
            }
            let expected = (-1..2)
                .rev()
                .find_map(|e| per_epoch.get(&(blk_idx, word, e)).copied());
            if let Some(expected) = expected {
                prop_assert_eq!(sb.forward(addr), Some(expected));
            }
        }
        // Epoch-exact invalidation removes exactly the tagged entries.
        let spec_before = sb.speculative_len();
        let removed = sb.flash_invalidate_exact(0) + sb.flash_invalidate_exact(1);
        prop_assert_eq!(removed, spec_before);
        prop_assert!(!sb.has_speculative());
    }

    /// A FIFO store buffer drains blocks in insertion order.
    #[test]
    fn fifo_store_buffer_preserves_order(blocks in proptest::collection::vec(0u64..16, 1..32)) {
        let mut sb = StoreBuffer::new_fifo(64, 64);
        for (i, b) in blocks.iter().enumerate() {
            sb.push(Addr::new(b * 64), i as u64, None).unwrap();
        }
        let mut drained = Vec::new();
        while let Some((blk, _)) = sb.drain_candidates().first().copied() {
            let entry = sb.drain_block(blk).unwrap();
            drained.push(entry.block.number());
        }
        prop_assert!(sb.is_empty());
        // The sequence of drained blocks is the insertion sequence with
        // consecutive duplicates collapsed.
        let mut expected = Vec::new();
        for b in &blocks {
            if expected.last() != Some(b) {
                expected.push(*b);
            }
        }
        // Collapsing only merges *adjacent* same-block runs, so the drained
        // list cannot be longer than the insertion list and must preserve
        // relative order of first occurrences.
        prop_assert_eq!(drained.len(), expected.len());
        prop_assert_eq!(drained, expected);
    }

    /// The cache never holds two lines for the same block, and its valid-line
    /// count never exceeds its capacity.
    #[test]
    fn cache_uniqueness_and_capacity(accesses in proptest::collection::vec(0u64..128, 1..300)) {
        let cfg = CacheConfig {
            size_bytes: 2 * 1024,
            associativity: 2,
            block_bytes: 64,
            hit_latency: 2,
            ports: 1,
            mshrs: 4,
            victim_entries: 0,
        };
        let capacity = cfg.blocks();
        let mut cache = SetAssocCache::new(&cfg);
        for a in accesses {
            let b = block(a * 64);
            cache.fill(b, LineState::Shared, BlockData::zeroed());
            prop_assert!(cache.valid_lines() <= capacity);
            prop_assert!(cache.contains(b), "a just-filled block is resident");
        }
        let mut seen = std::collections::HashSet::new();
        for (blk, _) in cache.iter_valid() {
            prop_assert!(seen.insert(blk.number()), "duplicate resident block");
        }
    }

    /// Flash-invalidating speculatively-written lines removes exactly those
    /// lines and clears every speculative mark.
    #[test]
    fn cache_abort_invalidates_only_written_lines(
        reads in proptest::collection::vec(0u64..32, 0..20),
        writes in proptest::collection::vec(0u64..32, 0..20),
    ) {
        let cfg = CacheConfig {
            size_bytes: 4 * 1024,
            associativity: 4,
            block_bytes: 64,
            hit_latency: 2,
            ports: 1,
            mshrs: 4,
            victim_entries: 0,
        };
        let mut cache = SetAssocCache::new(&cfg);
        for r in &reads {
            let b = block(r * 64);
            cache.fill(b, LineState::Shared, BlockData::zeroed());
            cache.mark_spec_read(b, 0);
        }
        for w in &writes {
            let b = block(w * 64);
            cache.fill(b, LineState::Modified, BlockData::zeroed());
            cache.mark_spec_written(b, 0);
        }
        let invalidated = cache.flash_invalidate_written(0);
        for b in &invalidated {
            prop_assert_eq!(cache.state(*b), LineState::Invalid);
        }
        prop_assert!(!cache.has_spec_lines());
        // Read-only speculative blocks survive the abort (they are simply
        // unmarked), unless the same block was also written.
        for r in &reads {
            if !writes.contains(r) {
                prop_assert!(cache.state(block(r * 64)).readable());
            }
        }
    }
}
