//! The telemetry layer's two non-negotiable invariants, held for every
//! ordering engine on the two preset workloads the kernel-equivalence suite
//! uses:
//!
//! 1. **Tracing is invisible.** A machine built with `trace = true` produces
//!    a [`MachineResult`] byte-identical (and byte-identical when encoded)
//!    to the untraced run — trace sinks observe the simulation, they never
//!    perturb it.
//! 2. **The trace is kernel-invariant.** All nine kernel modes
//!    (dense/event/batched/leap/epoch-1/2/4/leap-epoch-2/4) execute the
//!    identical simulated interaction sequence, so their merged traces —
//!    exported as JSONL through the store codec — must be byte-identical. A
//!    kernel that reorders one interaction fails here with a named event at
//!    a named cycle, long before aggregate counters could localize it.

use ifence_sim::{Machine, MachineResult};
use ifence_stats::MachineTrace;
use ifence_store::{trace_to_jsonl, Json, JsonCodec};
use invisifence_repro::prelude::*;

const MAX_CYCLES: u64 = 30_000_000;
const INSTRUCTIONS: usize = 600;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KernelMode {
    Dense,
    Event,
    Batched,
    Leap,
    EpochParallel(usize),
    LeapEpoch(usize),
}

impl KernelMode {
    const ALL: [KernelMode; 9] = [
        KernelMode::Dense,
        KernelMode::Event,
        KernelMode::Batched,
        KernelMode::Leap,
        KernelMode::EpochParallel(1),
        KernelMode::EpochParallel(2),
        KernelMode::EpochParallel(4),
        KernelMode::LeapEpoch(2),
        KernelMode::LeapEpoch(4),
    ];

    fn apply(self, cfg: &mut MachineConfig) {
        cfg.machine_threads = 1;
        cfg.leap_kernel = false;
        match self {
            KernelMode::Dense => {
                cfg.dense_kernel = true;
                cfg.batch_kernel = false;
            }
            KernelMode::Event => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = false;
            }
            KernelMode::Batched => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = true;
            }
            KernelMode::Leap => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = true;
                cfg.leap_kernel = true;
            }
            KernelMode::EpochParallel(threads) => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = true;
                cfg.machine_threads = threads;
            }
            KernelMode::LeapEpoch(threads) => {
                cfg.dense_kernel = false;
                cfg.batch_kernel = true;
                cfg.leap_kernel = true;
                cfg.machine_threads = threads;
            }
        }
    }
}

fn run(
    engine: EngineKind,
    workload: &WorkloadSpec,
    mode: KernelMode,
    trace: bool,
) -> (MachineResult, MachineTrace) {
    let mut cfg = MachineConfig::small_test(engine);
    mode.apply(&mut cfg);
    cfg.trace = trace;
    let programs = workload.generate(cfg.cores, INSTRUCTIONS, cfg.seed);
    Machine::new(cfg, programs).expect("valid config").into_result_with_trace(MAX_CYCLES)
}

fn assert_trace_invariants(engine: EngineKind, workload: &WorkloadSpec) {
    let label = engine.label();
    let name = &workload.name;

    // Invariant 1: tracing never changes the simulated result — structurally
    // and in its canonical encoding.
    let (untraced, empty) = run(engine, workload, KernelMode::Batched, false);
    assert!(untraced.finished, "{label} on {name} did not finish");
    assert!(empty.events.is_empty(), "untraced run must collect no events");
    let (traced, trace) = run(engine, workload, KernelMode::Batched, true);
    assert_eq!(untraced, traced, "{label} on {name}: tracing changed the simulated result");
    assert_eq!(
        untraced.to_json().encode(),
        traced.to_json().encode(),
        "{label} on {name}: tracing changed the encoded result"
    );
    assert_eq!(trace.dropped, 0, "{label} on {name}: the test scale must trace losslessly");

    // Invariant 2: the JSONL trace stream is byte-identical across all nine
    // kernel modes.
    let reference = trace_to_jsonl(&trace);
    for mode in KernelMode::ALL {
        if mode == KernelMode::Batched {
            continue;
        }
        let (result, other) = run(engine, workload, mode, true);
        assert_eq!(untraced, result, "{label} on {name}: {mode:?} traced result diverges");
        let jsonl = trace_to_jsonl(&other);
        if jsonl != reference {
            let diverging = trace
                .events
                .iter()
                .zip(&other.events)
                .position(|(a, b)| a != b)
                .map(|i| {
                    format!(
                        "first diverging event index {i}: {:?} vs {:?}",
                        trace.events[i], other.events[i]
                    )
                })
                .unwrap_or_else(|| {
                    format!("event counts differ: {} vs {}", trace.events.len(), other.events.len())
                });
            panic!("{label} on {name}: {mode:?} trace diverges from batched ({diverging})");
        }
    }

    // The canonical stream also survives a decode/re-encode cycle.
    let parsed = ifence_store::trace_from_jsonl(&reference).expect("own JSONL parses");
    assert_eq!(parsed.events, trace.events, "{label} on {name}: JSONL round trip changed events");
    assert_eq!(trace_to_jsonl(&parsed), reference);
}

#[test]
fn tracing_is_invisible_and_kernel_invariant_on_barnes() {
    let workload = presets::barnes();
    for engine in EngineKind::all() {
        assert_trace_invariants(engine, &workload);
    }
}

#[test]
fn tracing_is_invisible_and_kernel_invariant_on_apache() {
    let workload = presets::apache();
    for engine in EngineKind::all() {
        assert_trace_invariants(engine, &workload);
    }
}

#[test]
fn traced_runs_produce_the_expected_vocabulary() {
    // A speculative engine on a contended workload must emit speculation
    // events, and every histogram the summary carries must be populated
    // enough to be plotted (count > 0 for at least episode length and
    // store-buffer occupancy).
    let workload = presets::apache();
    let engine = EngineKind::InvisiSelective(ConsistencyModel::Sc);
    let (result, trace) = run(engine, &workload, KernelMode::Batched, true);
    assert!(result.finished);
    assert!(!trace.events.is_empty(), "traced run collected no events");
    let counts = trace.counts_by_kind();
    let count_of = |kind: ifence_stats::TraceKind| {
        counts.iter().find(|(k, _)| *k == kind).map(|(_, c)| *c).unwrap()
    };
    assert!(count_of(ifence_stats::TraceKind::SpecBegin) > 0, "no speculation began: {counts:?}");
    assert_eq!(
        count_of(ifence_stats::TraceKind::SpecBegin),
        count_of(ifence_stats::TraceKind::SpecCommit)
            + count_of(ifence_stats::TraceKind::SpecAbort),
        "episodes must balance: {counts:?}"
    );
    assert!(result.histograms.episode_len.count() > 0, "episode histogram is empty");
    assert!(result.histograms.sb_occupancy.count() > 0, "occupancy histogram is empty");
    assert_eq!(
        result.histograms.episode_len.count(),
        count_of(ifence_stats::TraceKind::SpecCommit)
            + count_of(ifence_stats::TraceKind::SpecAbort),
        "histogram samples and trace events must agree"
    );

    // Events arrive in the canonical order: cycle-major, core-minor.
    assert!(
        trace.events.windows(2).all(|w| (w[0].cycle, w[0].core) <= (w[1].cycle, w[1].core)),
        "merged trace is not cycle-major, core-minor"
    );
}

#[test]
fn deadlock_produces_structured_events() {
    // Two cores in an artificial cross-core deadlock would be ideal, but the
    // simplest deterministic deadlock in this simulator is a machine whose
    // cycle budget expires mid-flight; instead, reuse the sim crate's own
    // deadlock repro: a config with commit-on-violate and a timeout of never.
    // If constructing one proves impossible at this scale, the structured
    // path is still exercised by `Machine::finalise` unit behaviour — so
    // this test only asserts the JSON codec carries detail strings through.
    let event = ifence_stats::TraceEvent {
        cycle: 12,
        core: 3,
        kind: ifence_stats::TraceKind::Deadlock,
        value: 0,
        detail: Some("core3 now=12 rob=4 sb=2".to_string()),
    };
    let trace = MachineTrace { events: vec![event.clone()], dropped: 0 };
    let jsonl = trace_to_jsonl(&trace);
    let back = ifence_store::trace_from_jsonl(&jsonl).unwrap();
    assert_eq!(back.events, vec![event]);
    assert!(jsonl.contains("deadlock"), "label vocabulary missing: {jsonl}");
    let _ = Json::parse(jsonl.lines().next().unwrap()).expect("each line is a JSON document");
}
