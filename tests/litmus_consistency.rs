//! End-to-end consistency enforcement: litmus tests across every ordering
//! engine. The paper's central invariant is that post-retirement speculation
//! never becomes architecturally visible — an SC-enforcing InvisiFence
//! configuration must observe exactly the outcomes conventional SC allows.

use invisifence_repro::prelude::*;

const MAX_CYCLES: u64 = 60_000_000;
const ITERATIONS: usize = 25;

fn sc_enforcing_engines() -> Vec<EngineKind> {
    vec![
        EngineKind::Conventional(ConsistencyModel::Sc),
        EngineKind::InvisiSelective(ConsistencyModel::Sc),
        EngineKind::InvisiSelectiveTwoCkpt(ConsistencyModel::Sc),
        EngineKind::InvisiContinuous { commit_on_violate: false },
        EngineKind::InvisiContinuous { commit_on_violate: true },
        EngineKind::Aso(ConsistencyModel::Sc),
    ]
}

#[test]
fn sc_enforcing_engines_never_show_forbidden_store_buffering_outcomes() {
    let test = LitmusTest::store_buffering(ITERATIONS, false);
    for engine in sc_enforcing_engines() {
        let forbidden = run_litmus(engine, &test, MAX_CYCLES);
        assert_eq!(forbidden, 0, "{} allowed a Dekker violation", engine.label());
    }
}

#[test]
fn sc_enforcing_engines_never_show_forbidden_message_passing_outcomes() {
    let test = LitmusTest::message_passing(ITERATIONS, false);
    for engine in sc_enforcing_engines() {
        let forbidden = run_litmus(engine, &test, MAX_CYCLES);
        assert_eq!(forbidden, 0, "{} allowed a message-passing violation", engine.label());
    }
}

#[test]
fn tso_preserves_store_order_in_message_passing() {
    // TSO relaxes store→load order but not store→store, so message passing
    // without fences is still forbidden from showing flag=1,data=0.
    let test = LitmusTest::message_passing(ITERATIONS, false);
    for engine in [
        EngineKind::Conventional(ConsistencyModel::Tso),
        EngineKind::InvisiSelective(ConsistencyModel::Tso),
    ] {
        let forbidden = run_litmus(engine, &test, MAX_CYCLES);
        assert_eq!(forbidden, 0, "{} reordered stores", engine.label());
    }
}

#[test]
fn no_engine_shows_forbidden_load_buffering_outcomes() {
    // Load buffering's forbidden outcome (both loads observing the other
    // core's later store) requires load-value speculation, which no modeled
    // engine performs: every consistency model and engine — conventional or
    // speculative, SC through RMO — must report zero forbidden outcomes,
    // fenced or not.
    let every_engine = [
        EngineKind::Conventional(ConsistencyModel::Sc),
        EngineKind::Conventional(ConsistencyModel::Tso),
        EngineKind::Conventional(ConsistencyModel::Rmo),
        EngineKind::InvisiSelective(ConsistencyModel::Sc),
        EngineKind::InvisiSelective(ConsistencyModel::Tso),
        EngineKind::InvisiSelective(ConsistencyModel::Rmo),
        EngineKind::InvisiSelectiveTwoCkpt(ConsistencyModel::Sc),
        EngineKind::InvisiContinuous { commit_on_violate: false },
        EngineKind::InvisiContinuous { commit_on_violate: true },
        EngineKind::Aso(ConsistencyModel::Sc),
    ];
    for engine in every_engine {
        for fenced in [false, true] {
            let test = LitmusTest::load_buffering(ITERATIONS, fenced);
            let forbidden = run_litmus(engine, &test, MAX_CYCLES);
            assert_eq!(
                forbidden,
                0,
                "{} (fenced={fenced}) allowed a load-buffering causal cycle",
                engine.label()
            );
        }
    }
}

#[test]
fn sc_enforcing_engines_never_show_forbidden_iriw_outcomes() {
    let test = LitmusTest::iriw(ITERATIONS, false);
    for engine in sc_enforcing_engines() {
        let forbidden = run_litmus(engine, &test, MAX_CYCLES);
        assert_eq!(forbidden, 0, "{} let IRIW readers disagree on write order", engine.label());
    }
}

#[test]
fn iriw_stays_store_atomic_even_under_weak_models() {
    // The directory protocol serialises each block at a single point, so
    // stores are multi-copy atomic: the IRIW relaxed outcome cannot occur
    // even under conventional TSO/RMO, where the *model* would permit it on
    // non-store-atomic hardware.
    let test = LitmusTest::iriw(ITERATIONS, true);
    for engine in [
        EngineKind::Conventional(ConsistencyModel::Tso),
        EngineKind::Conventional(ConsistencyModel::Rmo),
        EngineKind::InvisiSelective(ConsistencyModel::Rmo),
    ] {
        let forbidden = run_litmus(engine, &test, MAX_CYCLES);
        assert_eq!(forbidden, 0, "{}: fenced IRIW must stay ordered", engine.label());
    }
}

#[test]
fn fences_restore_ordering_under_rmo() {
    // Under RMO the plain patterns may legally show relaxed outcomes, but with
    // full fences inserted both patterns become forbidden again — for the
    // conventional implementation and for InvisiFence, which speculates past
    // the fences instead of draining at them.
    for engine in [
        EngineKind::Conventional(ConsistencyModel::Rmo),
        EngineKind::InvisiSelective(ConsistencyModel::Rmo),
    ] {
        let mp = run_litmus(engine, &LitmusTest::message_passing(ITERATIONS, true), MAX_CYCLES);
        let sb = run_litmus(engine, &LitmusTest::store_buffering(ITERATIONS, true), MAX_CYCLES);
        assert_eq!(mp, 0, "{}: fenced message passing must be ordered", engine.label());
        assert_eq!(sb, 0, "{}: fenced store buffering must be ordered", engine.label());
    }
}
