//! Leap-horizon oracle: a property test that holds leap execution to
//! byte-identity against cycle-by-cycle stepping on *randomly parameterised*
//! machines, not just the curated presets.
//!
//! Each case draws a fresh workload shape (memory mix, contention, working
//! set, burstiness), seed and thread count from a seeded generator, then runs
//! the identical machine twice — once with `leap_kernel` enabled, once
//! stepping every cycle through the batched kernel — and requires the two
//! runs to agree on the entire traced [`MachineResult`]: cycle counts,
//! per-core counters and breakdowns, retired-load values, histograms, and
//! the full JSONL trace stream. Engines rotate through every implemented
//! kind, so the oracle covers both the leap-transparent engines (where the
//! closed-form advancement actually engages) and the speculative ones (where
//! the per-core gate must correctly refuse to leap while the machine still
//! routes through the epoch merge).

use ifence_sim::{Machine, MachineResult};
use ifence_stats::MachineTrace;
use ifence_store::trace_to_jsonl;
use ifence_workloads::TraceRng;
use invisifence_repro::prelude::*;

const MAX_CYCLES: u64 = 30_000_000;
const CASES: usize = 24;

/// A uniform draw in `[0, 1)` from the workload generator's own RNG.
fn unit(rng: &mut TraceRng) -> f64 {
    (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
}

/// A uniform draw in `[lo, hi]`.
fn range(rng: &mut TraceRng, lo: usize, hi: usize) -> usize {
    lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
}

/// A random but valid workload shape: probabilities span quiet to heavily
/// contended, working sets span L1-resident to thrashing.
fn random_spec(rng: &mut TraceRng, case: usize) -> WorkloadSpec {
    let mut spec = WorkloadSpec::uniform(format!("oracle-{case}"));
    spec.mem_fraction = 0.1 + 0.6 * unit(rng);
    spec.store_fraction = 0.1 + 0.5 * unit(rng);
    spec.critical_section_rate = 0.02 * unit(rng);
    spec.critical_section_len = range(rng, 2, 20);
    spec.locks = range(rng, 1, 64);
    spec.shared_fraction = 0.5 * unit(rng);
    spec.shared_blocks = range(rng, 64, 4096);
    spec.private_blocks = range(rng, 64, 4096);
    spec.store_burst_rate = 0.02 * unit(rng);
    spec.store_burst_len = range(rng, 2, 10);
    spec.fence_rate = 0.005 * unit(rng);
    spec.validate().expect("generated spec must be valid");
    spec
}

fn run(
    engine: EngineKind,
    spec: &WorkloadSpec,
    instructions: usize,
    seed: u64,
    threads: usize,
    leap: bool,
) -> (MachineResult, MachineTrace) {
    let mut cfg = MachineConfig::small_test(engine);
    cfg.seed = seed;
    cfg.machine_threads = threads;
    cfg.leap_kernel = leap;
    cfg.trace = true;
    let programs = spec.generate(cfg.cores, instructions, cfg.seed);
    Machine::new(cfg, programs).expect("valid config").into_result_with_trace(MAX_CYCLES)
}

#[test]
fn leaping_is_byte_identical_to_stepping_on_random_machines() {
    let engines = EngineKind::all();
    let mut rng = TraceRng::seed_from_u64(0x1ea9_0c1e_5eed);
    for case in 0..CASES {
        let spec = random_spec(&mut rng, case);
        let engine = engines[case % engines.len()];
        let instructions = range(&mut rng, 200, 900);
        let seed = rng.next_u64();
        let threads = [1, 1, 2, 4][range(&mut rng, 0, 3)];
        let label = format!(
            "case {case}: {} on {} ({instructions} instrs, seed {seed:#x}, {threads} threads)",
            engine.label(),
            spec.name
        );
        let (stepped, stepped_trace) = run(engine, &spec, instructions, seed, threads, false);
        let (leaped, leaped_trace) = run(engine, &spec, instructions, seed, threads, true);
        assert!(stepped.finished, "{label}: stepped run did not finish");
        assert_eq!(stepped, leaped, "{label}: leap execution changed the simulated result");
        assert_eq!(
            trace_to_jsonl(&stepped_trace),
            trace_to_jsonl(&leaped_trace),
            "{label}: leap execution changed the trace stream"
        );
    }
}
