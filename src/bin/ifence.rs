//! `ifence` — the workspace's command-line driver.
//!
//! Makes the whole evaluation drivable without editing examples: sweeps and
//! figure regeneration run through the persistent experiment store (resume
//! after interruption; warm re-runs are pure cache hits), stored sweeps can
//! be re-rendered (`report`) and compared (`diff`), and the litmus suite is
//! one command away.
//!
//! ```text
//! ifence figures [--figure all|1|8-10|11|12] [common options]
//! ifence sweep --engines sc,Invisi_rmo [--workloads Barnes,Apache] [--name NAME]
//! ifence litmus [--iterations N]
//! ifence report <name>            (or: ifence report --bench [FILE])
//! ifence diff <name-a> <name-b> [--threshold PCT] [--against DIR]
//! ifence trace record [--engine LABEL] [--workloads NAME] [--out FILE]
//! ifence trace summarize [FILE]
//! ifence trace filter FILE [--kind K] [--core N] [--cycles A..B] [--out FILE]
//! ifence trace diff FILE_A FILE_B
//!
//! common options:
//!   --store DIR    experiment store root   (default: $IFENCE_STORE or .ifence-store)
//!   --no-store     run without caching
//!   --instrs N     instructions per core   (default: $IFENCE_INSTRS or 100000)
//!   --seed N       workload seed           (default: $IFENCE_SEED or built-in)
//!   --jobs N       sweep worker threads    (default: $IFENCE_JOBS or cores)
//!   --quick        reduced 4-core test machine with short traces
//! ```
//!
//! Exit codes: 0 success; 1 usage or I/O error; 2 `diff` found regressions
//! beyond the threshold, `litmus` observed a forbidden outcome, or
//! `trace diff` found diverging streams.

use ifence_sim::figures::{run_all_figures, FigureContext};
use ifence_sim::sweep::{manifest_for_grid, ExperimentMatrix};
use ifence_sim::{run_litmus, ExperimentParams, Machine};
use ifence_stats::{ColumnTable, MachineTrace, PhaseProfile, TraceKind};
use ifence_store::{diff_sweeps, trace_from_jsonl, trace_to_jsonl, ExperimentStore, Json};
use ifence_types::{ConsistencyModel, EngineKind};
use ifence_workloads::{presets, LitmusTest, Workload};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("ifence: {message}");
            1
        }
    });
}

const USAGE: &str = "usage: ifence <command> [options]

commands:
  figures   regenerate the paper's figures (cached & resumable with a store)
  sweep     run a custom (engines x workloads) grid and store it by name
  litmus    run the litmus suite across every ordering engine
  report    re-render a stored sweep's tables without simulating
  diff      compare two stored sweeps and flag deltas beyond a threshold
  trace     record, summarize, filter and diff structured trace streams

common options:
  --store DIR   experiment store root (default: $IFENCE_STORE or .ifence-store)
  --no-store    disable the result cache for this run
  --instrs N    instructions per core
  --seed N      workload-generation seed
  --jobs N      sweep worker threads
  --quick       reduced 4-core test machine with short traces

run `ifence <command> --help` for command-specific options.";

/// Everything parsed from the command line.
struct Cli {
    command: String,
    positional: Vec<String>,
    store_dir: Option<PathBuf>,
    no_store: bool,
    instrs: Option<usize>,
    seed: Option<u64>,
    jobs: Option<usize>,
    quick: bool,
    engines: Option<String>,
    workloads: Option<String>,
    name: Option<String>,
    figure: Option<String>,
    threshold: Option<f64>,
    against: Option<PathBuf>,
    iterations: Option<usize>,
    engine: Option<String>,
    kind: Option<String>,
    core: Option<u32>,
    cycles: Option<String>,
    out: Option<PathBuf>,
    bench: bool,
    help: bool,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, String> {
        let mut cli = Cli {
            command: String::new(),
            positional: Vec::new(),
            store_dir: None,
            no_store: false,
            instrs: None,
            seed: None,
            jobs: None,
            quick: false,
            engines: None,
            workloads: None,
            name: None,
            figure: None,
            threshold: None,
            against: None,
            iterations: None,
            engine: None,
            kind: None,
            core: None,
            cycles: None,
            out: None,
            bench: false,
            help: false,
        };
        let mut iter = args.iter();
        let Some(command) = iter.next() else {
            return Err(format!("missing command\n{USAGE}"));
        };
        cli.command = command.clone();
        let value = |iter: &mut std::slice::Iter<'_, String>, flag: &str| {
            iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--store" => cli.store_dir = Some(PathBuf::from(value(&mut iter, "--store")?)),
                "--no-store" => cli.no_store = true,
                "--instrs" => cli.instrs = Some(parse_num(&value(&mut iter, "--instrs")?)?),
                "--seed" => cli.seed = Some(parse_num(&value(&mut iter, "--seed")?)?),
                "--jobs" => cli.jobs = Some(parse_num(&value(&mut iter, "--jobs")?)?),
                "--quick" => cli.quick = true,
                "--engines" => cli.engines = Some(value(&mut iter, "--engines")?),
                "--workloads" => cli.workloads = Some(value(&mut iter, "--workloads")?),
                "--name" => cli.name = Some(value(&mut iter, "--name")?),
                "--figure" => cli.figure = Some(value(&mut iter, "--figure")?),
                "--threshold" => {
                    let raw = value(&mut iter, "--threshold")?;
                    cli.threshold =
                        Some(raw.parse::<f64>().map_err(|_| format!("bad --threshold {raw:?}"))?);
                }
                "--against" => cli.against = Some(PathBuf::from(value(&mut iter, "--against")?)),
                "--iterations" => {
                    cli.iterations = Some(parse_num(&value(&mut iter, "--iterations")?)?)
                }
                "--engine" => cli.engine = Some(value(&mut iter, "--engine")?),
                "--kind" => cli.kind = Some(value(&mut iter, "--kind")?),
                "--core" => cli.core = Some(parse_num(&value(&mut iter, "--core")?)?),
                "--cycles" => cli.cycles = Some(value(&mut iter, "--cycles")?),
                "--out" => cli.out = Some(PathBuf::from(value(&mut iter, "--out")?)),
                "--bench" => cli.bench = true,
                "--help" | "-h" => cli.help = true,
                other if other.starts_with('-') => return Err(format!("unknown option {other}")),
                other => cli.positional.push(other.to_string()),
            }
        }
        Ok(cli)
    }

    fn params(&self) -> ExperimentParams {
        let mut params =
            if self.quick { ExperimentParams::quick_test() } else { ExperimentParams::from_env() };
        if let Some(instrs) = self.instrs {
            params.instructions_per_core = instrs.max(1);
        }
        if let Some(seed) = self.seed {
            params.seed = seed;
        }
        if let Some(jobs) = self.jobs {
            params.parallelism = jobs.max(1);
        }
        params
    }

    fn open_store(&self) -> Result<Option<ExperimentStore>, String> {
        if self.no_store {
            return Ok(None);
        }
        let root = self.store_dir.clone().unwrap_or_else(ExperimentStore::default_root);
        ExperimentStore::open(&root)
            .map(Some)
            .map_err(|e| format!("cannot open store {}: {e}", root.display()))
    }

    fn workload_list(&self) -> Result<Vec<Workload>, String> {
        let workloads: Vec<Workload> = match &self.workloads {
            None => presets::all_workloads(),
            Some(names) => names
                .split(',')
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .map(|n| {
                    presets::workload_by_name(n).ok_or_else(|| {
                        format!(
                            "unknown workload {n:?} (known: {})",
                            presets::all_workloads()
                                .iter()
                                .map(|w| w.name().to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        if workloads.is_empty() {
            return Err("--workloads selected no workloads".to_string());
        }
        Ok(workloads)
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.trim().parse::<T>().map_err(|_| format!("expected a number, got {raw:?}"))
}

/// Prints the kernel phase profile this process accumulated, when profiling
/// is on (`IFENCE_PROFILE=1`). Host wall clock only — simulated results are
/// unaffected by the profiler either way.
fn print_phase_profile() {
    let profile = PhaseProfile::global();
    if profile.enabled() {
        println!("{}", profile.snapshot().report());
    }
}

fn run(args: &[String]) -> Result<i32, String> {
    let cli = Cli::parse(args)?;
    if cli.help && cli.command.is_empty() {
        println!("{USAGE}");
        return Ok(0);
    }
    match cli.command.as_str() {
        "figures" => cmd_figures(&cli),
        "sweep" => cmd_sweep(&cli),
        "litmus" => cmd_litmus(&cli),
        "report" => cmd_report(&cli),
        "diff" => cmd_diff(&cli),
        "trace" => cmd_trace(&cli),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn cmd_figures(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence figures [--figure all|1|8-10|11|12] [common options]\n\n\
             Regenerates the paper's figure tables. With a store (the default), every\n\
             (engine x workload) cell is cached: an interrupted run resumes where it\n\
             stopped and a warm re-run performs zero simulations."
        );
        return Ok(0);
    }
    let params = cli.params();
    let store = cli.open_store()?;
    let ctx = match &store {
        Some(store) => FigureContext::with_store(&params, store),
        None => FigureContext::new(&params),
    };
    let workloads = cli.workload_list()?;
    let which = cli.figure.as_deref().unwrap_or("all");
    let (sections, cache): (Vec<(String, ColumnTable)>, ifence_store::CacheStats) = match which {
        "all" => run_all_figures(&workloads, &ctx),
        "1" => {
            let (data, table) = ifence_sim::figures::figure1_in(&workloads, &ctx);
            (
                vec![(
                    "Figure 1: ordering stalls in conventional implementations".to_string(),
                    table,
                )],
                data.cache,
            )
        }
        "8" | "9" | "10" | "8-10" => {
            let data = ifence_sim::figures::selective_matrix_in(&workloads, &ctx);
            (
                vec![
                    (
                        "Figure 8: speedup over conventional SC".to_string(),
                        ifence_sim::figures::figure8(&data),
                    ),
                    (
                        "Figure 9: runtime breakdown (normalised to SC)".to_string(),
                        ifence_sim::figures::figure9(&data),
                    ),
                    (
                        "Figure 10: % of cycles spent speculating".to_string(),
                        ifence_sim::figures::figure10(&data),
                    ),
                ],
                data.cache,
            )
        }
        "11" => {
            let (data, table) = ifence_sim::figures::figure11_in(&workloads, &ctx);
            (vec![("Figure 11: comparison with ASO".to_string(), table)], data.cache)
        }
        "12" => {
            let (data, table) = ifence_sim::figures::figure12_in(&workloads, &ctx);
            (
                vec![(
                    "Figure 12: continuous speculation and commit-on-violate".to_string(),
                    table,
                )],
                data.cache,
            )
        }
        other => return Err(format!("unknown --figure {other:?} (use all, 1, 8-10, 11 or 12)")),
    };
    for (title, table) in &sections {
        println!("== {title} ==");
        println!("{table}");
    }
    if let Some(store) = &store {
        println!(
            "store {}: {} cells served from cache, {} simulated this run ({} total entries)",
            store.root().display(),
            cache.hits,
            cache.misses,
            store.len()
        );
    }
    print_phase_profile();
    Ok(0)
}

fn all_engines() -> Vec<EngineKind> {
    use ConsistencyModel::*;
    vec![
        EngineKind::Conventional(Sc),
        EngineKind::Conventional(Tso),
        EngineKind::Conventional(Rmo),
        EngineKind::InvisiSelective(Sc),
        EngineKind::InvisiSelective(Tso),
        EngineKind::InvisiSelective(Rmo),
        EngineKind::InvisiSelectiveTwoCkpt(Sc),
        EngineKind::InvisiContinuous { commit_on_violate: false },
        EngineKind::InvisiContinuous { commit_on_violate: true },
        EngineKind::Aso(Sc),
    ]
}

fn cmd_sweep(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence sweep --engines LABELS [--workloads NAMES] [--name NAME] [common options]\n\n\
             Runs a custom (engines x workloads) grid through the cached sweep engine\n\
             and stores it under NAME (default: \"sweep\") for `ifence report`/`diff`.\n\
             Engine labels match the figures: sc tso rmo Invisi_sc Invisi_tso Invisi_rmo\n\
             Invisi_sc-2ckpt Invisi_cont Invisi_cont_CoV ASOsc ..."
        );
        return Ok(0);
    }
    let engines: Vec<EngineKind> = match &cli.engines {
        None => all_engines(),
        Some(labels) => labels
            .split(',')
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(|l| {
                EngineKind::from_label(l).ok_or_else(|| {
                    format!(
                        "unknown engine label {l:?} (known: {})",
                        all_engines().iter().map(|e| e.label()).collect::<Vec<_>>().join(", ")
                    )
                })
            })
            .collect::<Result<_, _>>()?,
    };
    if engines.is_empty() {
        return Err("--engines selected no engines".to_string());
    }
    let workloads = cli.workload_list()?;
    let params = cli.params();
    let store = cli.open_store()?;
    let sweep = ExperimentMatrix::new(&engines, &workloads).run_cached(&params, store.as_ref());

    let name = cli.name.clone().unwrap_or_else(|| "sweep".to_string());
    if let Some(store) = &store {
        let manifest = manifest_for_grid(
            &name,
            &format!("custom sweep {name}"),
            &engines,
            &workloads,
            &params,
        );
        store.write_manifest(&manifest).map_err(|e| format!("cannot write manifest: {e}"))?;
    }

    println!("{}", sweep_table(&engines, &sweep.rows));
    println!(
        "cache: {} hits, {} misses{}",
        sweep.cache.hits,
        sweep.cache.misses,
        match &store {
            Some(store) =>
                format!("; stored as {:?} in {}", ifence_store::slug(&name), store.root().display()),
            None => " (store disabled)".to_string(),
        }
    );
    print_phase_profile();
    Ok(0)
}

/// A generic sweep rendering: cycles and speedup-vs-first-config per cell.
fn sweep_table(
    engines: &[EngineKind],
    rows: &[(String, Vec<ifence_stats::RunSummary>)],
) -> ColumnTable {
    let mut header = vec!["workload".to_string(), "metric".to_string()];
    header.extend(engines.iter().map(|e| e.label()));
    let mut table = ColumnTable::new(header);
    for (workload, runs) in rows {
        let baseline = &runs[0];
        let mut cycles = vec![workload.clone(), "cycles".to_string()];
        let mut speedup = vec![String::new(), "speedup".to_string()];
        for run in runs {
            cycles.push(run.cycles.to_string());
            speedup.push(format!("{:.3}", run.speedup_over(baseline)));
        }
        table.push_row(cycles);
        table.push_row(speedup);
    }
    table
}

fn cmd_litmus(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence litmus [--iterations N]\n\n\
             Runs the litmus suite (MP, SB, LB, IRIW; fenced and unfenced) under every\n\
             ordering engine and reports forbidden-outcome counts. Exits 2 if an engine\n\
             shows an outcome its consistency model forbids. Litmus programs are fixed\n\
             (not generated), so the common sweep options do not apply here."
        );
        return Ok(0);
    }
    let iterations = cli.iterations.unwrap_or(25);
    const MAX_CYCLES: u64 = 60_000_000;
    let mut table = ColumnTable::new(["pattern", "fenced", "engine", "forbidden", "verdict"]);
    let mut violations = 0usize;
    for (pattern, build) in [
        ("message-passing", LitmusTest::message_passing as fn(usize, bool) -> LitmusTest),
        ("store-buffering", LitmusTest::store_buffering),
        ("load-buffering", LitmusTest::load_buffering),
        ("iriw", LitmusTest::iriw),
    ] {
        for fenced in [false, true] {
            let test = build(iterations, fenced);
            for engine in all_engines() {
                let forbidden = run_litmus(engine, &test, MAX_CYCLES);
                let must_be_zero = must_forbid(pattern, fenced, engine.model());
                let verdict = if forbidden == 0 {
                    "ok"
                } else if must_be_zero {
                    violations += 1;
                    "VIOLATION"
                } else {
                    "relaxed (allowed)"
                };
                table.push_row([
                    pattern.to_string(),
                    fenced.to_string(),
                    engine.label(),
                    forbidden.to_string(),
                    verdict.to_string(),
                ]);
            }
        }
    }
    println!("{table}");
    if violations > 0 {
        eprintln!("ifence: {violations} consistency violation(s) observed");
        return Ok(2);
    }
    println!("all engines enforce their consistency models ({iterations} iterations/pattern)");
    print_phase_profile();
    Ok(0)
}

/// Whether a pattern's forbidden outcome must be absent under the given
/// model (with fences, every pattern is ordered under every model; load
/// buffering is forbidden everywhere because no engine speculates on load
/// values).
fn must_forbid(pattern: &str, fenced: bool, model: ConsistencyModel) -> bool {
    if fenced || pattern == "load-buffering" {
        return true;
    }
    match pattern {
        "message-passing" => model != ConsistencyModel::Rmo,
        "store-buffering" | "iriw" => model == ConsistencyModel::Sc,
        _ => true,
    }
}

fn cmd_report(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence report <name> [common options]\n\
             \x20      ifence report --bench [FILE]\n\n\
             Re-renders a stored sweep's tables from the experiment store without\n\
             running any simulation, including the fabric's memory-hierarchy columns\n\
             (L2 hits/misses, evictions/recalls, DRAM traffic). With no <name>, lists\n\
             the stored sweeps. With --bench, renders the bench wall-clock trajectory\n\
             (default: BENCH_results.json) including any profile_<phase>_ms columns\n\
             recorded under IFENCE_PROFILE=1."
        );
        return Ok(0);
    }
    if cli.bench {
        return report_bench(cli);
    }
    let store =
        cli.open_store()?.ok_or_else(|| "report needs a store (omit --no-store)".to_string())?;
    let Some(name) = cli.positional.first() else {
        let names = store.manifest_names().map_err(|e| e.to_string())?;
        if names.is_empty() {
            println!("store {} has no sweeps yet", store.root().display());
        } else {
            println!("stored sweeps in {}:", store.root().display());
            for name in names {
                println!("  {name}");
            }
        }
        return Ok(0);
    };
    let manifest = store
        .read_manifest(name)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no sweep named {name:?} in {}", store.root().display()))?;
    let rows = store.resolve(&manifest)?;
    println!(
        "{} ({} instructions/core, seed {})",
        manifest.figure, manifest.instructions_per_core, manifest.seed
    );
    let mut table = ColumnTable::new(
        [
            "workload",
            "config",
            "cycles",
            "runtime % of first",
            "l2 hit/miss",
            "l2 evict/recall",
            "dram rd/wb",
            "breakdown",
        ]
        .into_iter()
        .map(str::to_string),
    );
    for (workload, runs) in &rows {
        let baseline = &runs[0];
        for run in runs {
            let fabric = &run.fabric;
            table.push_row([
                workload.clone(),
                run.config.clone(),
                run.cycles.to_string(),
                format!("{:.1}", run.normalized_runtime(baseline)),
                format!("{}/{}", fabric.l2_hits, fabric.l2_misses),
                format!("{}/{}", fabric.l2_evictions, fabric.l2_recalls),
                format!("{}/{}", fabric.dram_reads, fabric.dram_writebacks),
                run.breakdown.to_string(),
            ]);
        }
    }
    println!("{table}");
    Ok(0)
}

/// `ifence report --bench [FILE]` — renders the bench wall-clock trajectory
/// (`BENCH_results.json`) as a table, surfacing the `profile_<phase>_ms`
/// columns that profiled runs record alongside their wall clock.
fn report_bench(cli: &Cli) -> Result<i32, String> {
    let path = cli
        .positional
        .first()
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("BENCH_results.json"));
    let text = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let Json::Array(entries) =
        Json::parse(&text).map_err(|e| format!("{} is not valid JSON: {e}", path.display()))?
    else {
        return Err(format!("{} is not a JSON array of bench records", path.display()));
    };
    // The profile columns are optional per record (only profiled runs carry
    // them); the header is the union, in first-appearance order.
    let mut profile_columns: Vec<String> = Vec::new();
    for entry in &entries {
        if let Json::Object(fields) = entry {
            for (name, _) in fields {
                if name.starts_with("profile_") && !profile_columns.contains(name) {
                    profile_columns.push(name.clone());
                }
            }
        }
    }
    let mut header = vec![
        "bench".to_string(),
        "detail".to_string(),
        "instrs".to_string(),
        "wall ms".to_string(),
    ];
    header.extend(profile_columns.iter().cloned());
    let mut table = ColumnTable::new(header);
    let cell = |entry: &Json, name: &str| -> String {
        match entry.field(name) {
            Some(Json::Str(s)) => s.clone(),
            Some(Json::UInt(n)) => n.to_string(),
            Some(Json::Float(x)) => format!("{x:.1}"),
            _ => String::new(),
        }
    };
    for entry in &entries {
        let mut row = vec![
            cell(entry, "bench"),
            cell(entry, "detail"),
            cell(entry, "instructions_per_core"),
            cell(entry, "wall_clock_ms"),
        ];
        row.extend(profile_columns.iter().map(|name| cell(entry, name)));
        table.push_row(row);
    }
    println!("{table}");
    println!("{} bench record(s) in {}", entries.len(), path.display());
    Ok(0)
}

fn cmd_diff(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence diff <name-a> <name-b> [--threshold PCT] [--against DIR] [common options]\n\n\
             Compares two stored sweeps cell by cell. <name-b> resolves in the store\n\
             given by --against (default: the same store as <name-a>). Cells whose\n\
             cycle delta or breakdown shift exceeds the threshold (default 2%) are\n\
             flagged; flagged slowdowns exit 2 — a perf-regression gate."
        );
        return Ok(0);
    }
    let [name_a, name_b] = cli.positional.as_slice() else {
        return Err("diff needs two sweep names (see ifence diff --help)".to_string());
    };
    let store_a =
        cli.open_store()?.ok_or_else(|| "diff needs a store (omit --no-store)".to_string())?;
    // Without --against both sides resolve in the already-open store; only a
    // genuinely different directory is opened (and indexed) a second time.
    let against = match &cli.against {
        Some(dir) => Some(
            ExperimentStore::open(dir)
                .map_err(|e| format!("cannot open --against store {}: {e}", dir.display()))?,
        ),
        None => None,
    };
    let store_b = against.as_ref().unwrap_or(&store_a);
    let manifest_a = store_a
        .read_manifest(name_a)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no sweep named {name_a:?} in {}", store_a.root().display()))?;
    let manifest_b = store_b
        .read_manifest(name_b)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no sweep named {name_b:?} in {}", store_b.root().display()))?;
    let threshold = cli.threshold.unwrap_or(2.0);
    let report = diff_sweeps(&store_a, &manifest_a, store_b, &manifest_b, threshold)?;
    println!("{}", report.table());
    for unmatched in &report.unmatched {
        println!("unmatched: {unmatched}");
    }
    println!(
        "{} cell(s) compared, {} flagged beyond {:.1}%, {} regression(s)",
        report.rows.len(),
        report.flagged(),
        threshold,
        report.regressions()
    );
    Ok(if report.regressions() > 0 { 2 } else { 0 })
}

const TRACE_USAGE: &str = "usage: ifence trace <verb> [options]

verbs:
  record     run one traced simulation and emit its JSONL event stream
             [--engine LABEL] [--workloads NAME] [--out FILE] [common options]
  summarize  render a stream's per-kind counts and cycle span  [FILE]
  filter     keep a stream's matching events
             FILE [--kind K] [--core N] [--cycles A..B] [--out FILE]
  diff       compare two streams line by line; exits 2 on divergence
             FILE_A FILE_B

Tracing never changes simulated results, and the stream is byte-identical
across every kernel mode (see tests/trace_equivalence.rs). Event kinds:
spec_begin spec_commit spec_abort cov_defer_start cov_defer_end
sb_high_water l2_eviction l2_recall dram_fetch deadlock.";

fn cmd_trace(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!("{TRACE_USAGE}");
        return Ok(0);
    }
    let Some(verb) = cli.positional.first() else {
        return Err(format!("trace needs a verb\n{TRACE_USAGE}"));
    };
    match verb.as_str() {
        "record" => trace_record(cli),
        "summarize" => trace_summarize(cli),
        "filter" => trace_filter(cli),
        "diff" => trace_diff(cli),
        other => Err(format!("unknown trace verb {other:?}\n{TRACE_USAGE}")),
    }
}

/// Writes a JSONL stream to `--out` (or stdout when absent), reporting where
/// it went on stderr so stdout stays a clean pipeable stream.
fn write_stream(out: &Option<PathBuf>, jsonl: &str, events: usize) -> Result<(), String> {
    match out {
        Some(path) => {
            std::fs::write(path, jsonl)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            eprintln!("wrote {events} event(s) to {}", path.display());
        }
        None => print!("{jsonl}"),
    }
    Ok(())
}

/// Reads a JSONL stream from a file argument.
fn read_stream(path: &str) -> Result<MachineTrace, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    trace_from_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

fn trace_record(cli: &Cli) -> Result<i32, String> {
    let label = cli.engine.as_deref().unwrap_or("Invisi_sc");
    let engine = EngineKind::from_label(label).ok_or_else(|| {
        format!(
            "unknown engine label {label:?} (known: {})",
            all_engines().iter().map(|e| e.label()).collect::<Vec<_>>().join(", ")
        )
    })?;
    let workloads = cli.workload_list()?;
    let workload = &workloads[0];
    if workloads.len() > 1 {
        eprintln!("trace record runs one workload; using {:?}", workload.name());
    }
    let params = cli.params();
    let mut cfg = params.config_for(engine);
    cfg.trace = true;
    let sources = workload.sources(cfg.cores, params.instructions_per_core, params.seed);
    let machine = Machine::from_sources(cfg, sources).expect("derived configuration is valid");
    let (result, trace) = machine.into_result_with_trace(params.max_cycles);
    let jsonl = trace_to_jsonl(&trace);
    eprintln!(
        "{} on {}: {} cycle(s), {} event(s){}{}",
        engine.label(),
        workload.name(),
        result.cycles,
        trace.events.len(),
        if trace.dropped > 0 {
            format!(", {} dropped by the ring (raise the shard capacity)", trace.dropped)
        } else {
            String::new()
        },
        if result.finished { "" } else { " [run did not finish]" },
    );
    write_stream(&cli.out, &jsonl, trace.events.len())?;
    Ok(0)
}

fn trace_summarize(cli: &Cli) -> Result<i32, String> {
    let Some(path) = cli.positional.get(1) else {
        return Err("trace summarize needs a stream FILE (from trace record --out)".to_string());
    };
    let trace = read_stream(path)?;
    let mut table = ColumnTable::new(["kind", "events", "value min", "value max", "value mean"]);
    for (kind, count) in trace.counts_by_kind() {
        if count == 0 {
            continue;
        }
        let values =
            trace.events.iter().filter(|e| e.kind == kind).map(|e| e.value).collect::<Vec<_>>();
        let sum: u64 = values.iter().sum();
        table.push_row([
            kind.label().to_string(),
            count.to_string(),
            values.iter().min().unwrap().to_string(),
            values.iter().max().unwrap().to_string(),
            format!("{:.1}", sum as f64 / count as f64),
        ]);
    }
    println!("{table}");
    match (trace.events.first(), trace.events.last()) {
        (Some(first), Some(last)) => {
            let cores = {
                let mut cores: Vec<u32> = trace.events.iter().map(|e| e.core).collect();
                cores.sort_unstable();
                cores.dedup();
                cores.len()
            };
            println!(
                "{} event(s) over cycles {}..={} from {} core(s)/home node(s)",
                trace.events.len(),
                first.cycle,
                last.cycle,
                cores
            );
        }
        _ => println!("empty stream"),
    }
    Ok(0)
}

/// Parses the `--cycles A..B` filter (inclusive on both ends; either bound
/// may be omitted).
fn parse_cycle_range(raw: &str) -> Result<(u64, u64), String> {
    let Some((lo, hi)) = raw.split_once("..") else {
        return Err(format!("bad --cycles {raw:?} (expected A..B, A.. or ..B)"));
    };
    let lo = if lo.is_empty() { 0 } else { parse_num(lo)? };
    let hi = if hi.is_empty() { u64::MAX } else { parse_num(hi)? };
    if lo > hi {
        return Err(format!("bad --cycles {raw:?} (empty range)"));
    }
    Ok((lo, hi))
}

fn trace_filter(cli: &Cli) -> Result<i32, String> {
    let Some(path) = cli.positional.get(1) else {
        return Err("trace filter needs a stream FILE".to_string());
    };
    let kind = match &cli.kind {
        None => None,
        Some(label) => Some(TraceKind::from_label(label).ok_or_else(|| {
            format!(
                "unknown --kind {label:?} (known: {})",
                TraceKind::ALL.map(TraceKind::label).join(", ")
            )
        })?),
    };
    let cycles = cli.cycles.as_deref().map(parse_cycle_range).transpose()?;
    let mut trace = read_stream(path)?;
    let before = trace.events.len();
    trace.events.retain(|event| {
        kind.map_or(true, |k| event.kind == k)
            && cli.core.map_or(true, |c| event.core == c)
            && cycles.map_or(true, |(lo, hi)| (lo..=hi).contains(&event.cycle))
    });
    eprintln!("{} of {before} event(s) match", trace.events.len());
    write_stream(&cli.out, &trace_to_jsonl(&trace), trace.events.len())?;
    Ok(0)
}

fn trace_diff(cli: &Cli) -> Result<i32, String> {
    let (Some(path_a), Some(path_b)) = (cli.positional.get(1), cli.positional.get(2)) else {
        return Err("trace diff needs two stream FILEs".to_string());
    };
    // Parse both sides first so malformed streams are an error (exit 1),
    // not a divergence (exit 2); the comparison itself is on the canonical
    // re-encoded lines, so formatting noise cannot mask or fake a diff.
    let a = trace_to_jsonl(&read_stream(path_a)?);
    let b = trace_to_jsonl(&read_stream(path_b)?);
    let lines_a: Vec<&str> = a.lines().collect();
    let lines_b: Vec<&str> = b.lines().collect();
    if lines_a == lines_b {
        println!("streams are identical ({} event(s))", lines_a.len());
        return Ok(0);
    }
    match lines_a.iter().zip(&lines_b).position(|(x, y)| x != y) {
        Some(index) => {
            println!("streams diverge at event {}:", index + 1);
            println!("  {path_a}: {}", lines_a[index]);
            println!("  {path_b}: {}", lines_b[index]);
        }
        None => {
            println!("streams diverge in length: {} vs {} event(s)", lines_a.len(), lines_b.len())
        }
    }
    Ok(2)
}
