//! `ifence` — the workspace's command-line driver.
//!
//! Makes the whole evaluation drivable without editing examples: sweeps and
//! figure regeneration run through the persistent experiment store (resume
//! after interruption; warm re-runs are pure cache hits), stored sweeps can
//! be re-rendered (`report`) and compared (`diff`), and the litmus suite is
//! one command away.
//!
//! ```text
//! ifence figures [--figure all|1|8-10|11|12] [common options]
//! ifence sweep --engines sc,Invisi_rmo [--workloads Barnes,Apache] [--name NAME]
//! ifence litmus [--iterations N]
//! ifence report <name>
//! ifence diff <name-a> <name-b> [--threshold PCT] [--against DIR]
//!
//! common options:
//!   --store DIR    experiment store root   (default: $IFENCE_STORE or .ifence-store)
//!   --no-store     run without caching
//!   --instrs N     instructions per core   (default: $IFENCE_INSTRS or 100000)
//!   --seed N       workload seed           (default: $IFENCE_SEED or built-in)
//!   --jobs N       sweep worker threads    (default: $IFENCE_JOBS or cores)
//!   --quick        reduced 4-core test machine with short traces
//! ```
//!
//! Exit codes: 0 success; 1 usage or I/O error; 2 `diff` found regressions
//! beyond the threshold, or `litmus` observed a forbidden outcome.

use ifence_sim::figures::{run_all_figures, FigureContext};
use ifence_sim::sweep::{manifest_for_grid, ExperimentMatrix};
use ifence_sim::{run_litmus, ExperimentParams};
use ifence_stats::{ColumnTable, PhaseProfile};
use ifence_store::{diff_sweeps, ExperimentStore};
use ifence_types::{ConsistencyModel, EngineKind};
use ifence_workloads::{presets, LitmusTest, Workload};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(match run(&args) {
        Ok(code) => code,
        Err(message) => {
            eprintln!("ifence: {message}");
            1
        }
    });
}

const USAGE: &str = "usage: ifence <command> [options]

commands:
  figures   regenerate the paper's figures (cached & resumable with a store)
  sweep     run a custom (engines x workloads) grid and store it by name
  litmus    run the litmus suite across every ordering engine
  report    re-render a stored sweep's tables without simulating
  diff      compare two stored sweeps and flag deltas beyond a threshold

common options:
  --store DIR   experiment store root (default: $IFENCE_STORE or .ifence-store)
  --no-store    disable the result cache for this run
  --instrs N    instructions per core
  --seed N      workload-generation seed
  --jobs N      sweep worker threads
  --quick       reduced 4-core test machine with short traces

run `ifence <command> --help` for command-specific options.";

/// Everything parsed from the command line.
struct Cli {
    command: String,
    positional: Vec<String>,
    store_dir: Option<PathBuf>,
    no_store: bool,
    instrs: Option<usize>,
    seed: Option<u64>,
    jobs: Option<usize>,
    quick: bool,
    engines: Option<String>,
    workloads: Option<String>,
    name: Option<String>,
    figure: Option<String>,
    threshold: Option<f64>,
    against: Option<PathBuf>,
    iterations: Option<usize>,
    help: bool,
}

impl Cli {
    fn parse(args: &[String]) -> Result<Cli, String> {
        let mut cli = Cli {
            command: String::new(),
            positional: Vec::new(),
            store_dir: None,
            no_store: false,
            instrs: None,
            seed: None,
            jobs: None,
            quick: false,
            engines: None,
            workloads: None,
            name: None,
            figure: None,
            threshold: None,
            against: None,
            iterations: None,
            help: false,
        };
        let mut iter = args.iter();
        let Some(command) = iter.next() else {
            return Err(format!("missing command\n{USAGE}"));
        };
        cli.command = command.clone();
        let value = |iter: &mut std::slice::Iter<'_, String>, flag: &str| {
            iter.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        while let Some(arg) = iter.next() {
            match arg.as_str() {
                "--store" => cli.store_dir = Some(PathBuf::from(value(&mut iter, "--store")?)),
                "--no-store" => cli.no_store = true,
                "--instrs" => cli.instrs = Some(parse_num(&value(&mut iter, "--instrs")?)?),
                "--seed" => cli.seed = Some(parse_num(&value(&mut iter, "--seed")?)?),
                "--jobs" => cli.jobs = Some(parse_num(&value(&mut iter, "--jobs")?)?),
                "--quick" => cli.quick = true,
                "--engines" => cli.engines = Some(value(&mut iter, "--engines")?),
                "--workloads" => cli.workloads = Some(value(&mut iter, "--workloads")?),
                "--name" => cli.name = Some(value(&mut iter, "--name")?),
                "--figure" => cli.figure = Some(value(&mut iter, "--figure")?),
                "--threshold" => {
                    let raw = value(&mut iter, "--threshold")?;
                    cli.threshold =
                        Some(raw.parse::<f64>().map_err(|_| format!("bad --threshold {raw:?}"))?);
                }
                "--against" => cli.against = Some(PathBuf::from(value(&mut iter, "--against")?)),
                "--iterations" => {
                    cli.iterations = Some(parse_num(&value(&mut iter, "--iterations")?)?)
                }
                "--help" | "-h" => cli.help = true,
                other if other.starts_with('-') => return Err(format!("unknown option {other}")),
                other => cli.positional.push(other.to_string()),
            }
        }
        Ok(cli)
    }

    fn params(&self) -> ExperimentParams {
        let mut params =
            if self.quick { ExperimentParams::quick_test() } else { ExperimentParams::from_env() };
        if let Some(instrs) = self.instrs {
            params.instructions_per_core = instrs.max(1);
        }
        if let Some(seed) = self.seed {
            params.seed = seed;
        }
        if let Some(jobs) = self.jobs {
            params.parallelism = jobs.max(1);
        }
        params
    }

    fn open_store(&self) -> Result<Option<ExperimentStore>, String> {
        if self.no_store {
            return Ok(None);
        }
        let root = self.store_dir.clone().unwrap_or_else(ExperimentStore::default_root);
        ExperimentStore::open(&root)
            .map(Some)
            .map_err(|e| format!("cannot open store {}: {e}", root.display()))
    }

    fn workload_list(&self) -> Result<Vec<Workload>, String> {
        let workloads: Vec<Workload> = match &self.workloads {
            None => presets::all_workloads(),
            Some(names) => names
                .split(',')
                .map(str::trim)
                .filter(|n| !n.is_empty())
                .map(|n| {
                    presets::workload_by_name(n).ok_or_else(|| {
                        format!(
                            "unknown workload {n:?} (known: {})",
                            presets::all_workloads()
                                .iter()
                                .map(|w| w.name().to_string())
                                .collect::<Vec<_>>()
                                .join(", ")
                        )
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        if workloads.is_empty() {
            return Err("--workloads selected no workloads".to_string());
        }
        Ok(workloads)
    }
}

fn parse_num<T: std::str::FromStr>(raw: &str) -> Result<T, String> {
    raw.trim().parse::<T>().map_err(|_| format!("expected a number, got {raw:?}"))
}

/// Prints the kernel phase profile this process accumulated, when profiling
/// is on (`IFENCE_PROFILE=1`). Host wall clock only — simulated results are
/// unaffected by the profiler either way.
fn print_phase_profile() {
    let profile = PhaseProfile::global();
    if profile.enabled() {
        println!("{}", profile.snapshot().report());
    }
}

fn run(args: &[String]) -> Result<i32, String> {
    let cli = Cli::parse(args)?;
    if cli.help && cli.command.is_empty() {
        println!("{USAGE}");
        return Ok(0);
    }
    match cli.command.as_str() {
        "figures" => cmd_figures(&cli),
        "sweep" => cmd_sweep(&cli),
        "litmus" => cmd_litmus(&cli),
        "report" => cmd_report(&cli),
        "diff" => cmd_diff(&cli),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(0)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn cmd_figures(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence figures [--figure all|1|8-10|11|12] [common options]\n\n\
             Regenerates the paper's figure tables. With a store (the default), every\n\
             (engine x workload) cell is cached: an interrupted run resumes where it\n\
             stopped and a warm re-run performs zero simulations."
        );
        return Ok(0);
    }
    let params = cli.params();
    let store = cli.open_store()?;
    let ctx = match &store {
        Some(store) => FigureContext::with_store(&params, store),
        None => FigureContext::new(&params),
    };
    let workloads = cli.workload_list()?;
    let which = cli.figure.as_deref().unwrap_or("all");
    let (sections, cache): (Vec<(String, ColumnTable)>, ifence_store::CacheStats) = match which {
        "all" => run_all_figures(&workloads, &ctx),
        "1" => {
            let (data, table) = ifence_sim::figures::figure1_in(&workloads, &ctx);
            (
                vec![(
                    "Figure 1: ordering stalls in conventional implementations".to_string(),
                    table,
                )],
                data.cache,
            )
        }
        "8" | "9" | "10" | "8-10" => {
            let data = ifence_sim::figures::selective_matrix_in(&workloads, &ctx);
            (
                vec![
                    (
                        "Figure 8: speedup over conventional SC".to_string(),
                        ifence_sim::figures::figure8(&data),
                    ),
                    (
                        "Figure 9: runtime breakdown (normalised to SC)".to_string(),
                        ifence_sim::figures::figure9(&data),
                    ),
                    (
                        "Figure 10: % of cycles spent speculating".to_string(),
                        ifence_sim::figures::figure10(&data),
                    ),
                ],
                data.cache,
            )
        }
        "11" => {
            let (data, table) = ifence_sim::figures::figure11_in(&workloads, &ctx);
            (vec![("Figure 11: comparison with ASO".to_string(), table)], data.cache)
        }
        "12" => {
            let (data, table) = ifence_sim::figures::figure12_in(&workloads, &ctx);
            (
                vec![(
                    "Figure 12: continuous speculation and commit-on-violate".to_string(),
                    table,
                )],
                data.cache,
            )
        }
        other => return Err(format!("unknown --figure {other:?} (use all, 1, 8-10, 11 or 12)")),
    };
    for (title, table) in &sections {
        println!("== {title} ==");
        println!("{table}");
    }
    if let Some(store) = &store {
        println!(
            "store {}: {} cells served from cache, {} simulated this run ({} total entries)",
            store.root().display(),
            cache.hits,
            cache.misses,
            store.len()
        );
    }
    print_phase_profile();
    Ok(0)
}

fn all_engines() -> Vec<EngineKind> {
    use ConsistencyModel::*;
    vec![
        EngineKind::Conventional(Sc),
        EngineKind::Conventional(Tso),
        EngineKind::Conventional(Rmo),
        EngineKind::InvisiSelective(Sc),
        EngineKind::InvisiSelective(Tso),
        EngineKind::InvisiSelective(Rmo),
        EngineKind::InvisiSelectiveTwoCkpt(Sc),
        EngineKind::InvisiContinuous { commit_on_violate: false },
        EngineKind::InvisiContinuous { commit_on_violate: true },
        EngineKind::Aso(Sc),
    ]
}

fn cmd_sweep(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence sweep --engines LABELS [--workloads NAMES] [--name NAME] [common options]\n\n\
             Runs a custom (engines x workloads) grid through the cached sweep engine\n\
             and stores it under NAME (default: \"sweep\") for `ifence report`/`diff`.\n\
             Engine labels match the figures: sc tso rmo Invisi_sc Invisi_tso Invisi_rmo\n\
             Invisi_sc-2ckpt Invisi_cont Invisi_cont_CoV ASOsc ..."
        );
        return Ok(0);
    }
    let engines: Vec<EngineKind> = match &cli.engines {
        None => all_engines(),
        Some(labels) => labels
            .split(',')
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .map(|l| {
                EngineKind::from_label(l).ok_or_else(|| {
                    format!(
                        "unknown engine label {l:?} (known: {})",
                        all_engines().iter().map(|e| e.label()).collect::<Vec<_>>().join(", ")
                    )
                })
            })
            .collect::<Result<_, _>>()?,
    };
    if engines.is_empty() {
        return Err("--engines selected no engines".to_string());
    }
    let workloads = cli.workload_list()?;
    let params = cli.params();
    let store = cli.open_store()?;
    let sweep = ExperimentMatrix::new(&engines, &workloads).run_cached(&params, store.as_ref());

    let name = cli.name.clone().unwrap_or_else(|| "sweep".to_string());
    if let Some(store) = &store {
        let manifest = manifest_for_grid(
            &name,
            &format!("custom sweep {name}"),
            &engines,
            &workloads,
            &params,
        );
        store.write_manifest(&manifest).map_err(|e| format!("cannot write manifest: {e}"))?;
    }

    println!("{}", sweep_table(&engines, &sweep.rows));
    println!(
        "cache: {} hits, {} misses{}",
        sweep.cache.hits,
        sweep.cache.misses,
        match &store {
            Some(store) =>
                format!("; stored as {:?} in {}", ifence_store::slug(&name), store.root().display()),
            None => " (store disabled)".to_string(),
        }
    );
    print_phase_profile();
    Ok(0)
}

/// A generic sweep rendering: cycles and speedup-vs-first-config per cell.
fn sweep_table(
    engines: &[EngineKind],
    rows: &[(String, Vec<ifence_stats::RunSummary>)],
) -> ColumnTable {
    let mut header = vec!["workload".to_string(), "metric".to_string()];
    header.extend(engines.iter().map(|e| e.label()));
    let mut table = ColumnTable::new(header);
    for (workload, runs) in rows {
        let baseline = &runs[0];
        let mut cycles = vec![workload.clone(), "cycles".to_string()];
        let mut speedup = vec![String::new(), "speedup".to_string()];
        for run in runs {
            cycles.push(run.cycles.to_string());
            speedup.push(format!("{:.3}", run.speedup_over(baseline)));
        }
        table.push_row(cycles);
        table.push_row(speedup);
    }
    table
}

fn cmd_litmus(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence litmus [--iterations N]\n\n\
             Runs the litmus suite (MP, SB, LB, IRIW; fenced and unfenced) under every\n\
             ordering engine and reports forbidden-outcome counts. Exits 2 if an engine\n\
             shows an outcome its consistency model forbids. Litmus programs are fixed\n\
             (not generated), so the common sweep options do not apply here."
        );
        return Ok(0);
    }
    let iterations = cli.iterations.unwrap_or(25);
    const MAX_CYCLES: u64 = 60_000_000;
    let mut table = ColumnTable::new(["pattern", "fenced", "engine", "forbidden", "verdict"]);
    let mut violations = 0usize;
    for (pattern, build) in [
        ("message-passing", LitmusTest::message_passing as fn(usize, bool) -> LitmusTest),
        ("store-buffering", LitmusTest::store_buffering),
        ("load-buffering", LitmusTest::load_buffering),
        ("iriw", LitmusTest::iriw),
    ] {
        for fenced in [false, true] {
            let test = build(iterations, fenced);
            for engine in all_engines() {
                let forbidden = run_litmus(engine, &test, MAX_CYCLES);
                let must_be_zero = must_forbid(pattern, fenced, engine.model());
                let verdict = if forbidden == 0 {
                    "ok"
                } else if must_be_zero {
                    violations += 1;
                    "VIOLATION"
                } else {
                    "relaxed (allowed)"
                };
                table.push_row([
                    pattern.to_string(),
                    fenced.to_string(),
                    engine.label(),
                    forbidden.to_string(),
                    verdict.to_string(),
                ]);
            }
        }
    }
    println!("{table}");
    if violations > 0 {
        eprintln!("ifence: {violations} consistency violation(s) observed");
        return Ok(2);
    }
    println!("all engines enforce their consistency models ({iterations} iterations/pattern)");
    print_phase_profile();
    Ok(0)
}

/// Whether a pattern's forbidden outcome must be absent under the given
/// model (with fences, every pattern is ordered under every model; load
/// buffering is forbidden everywhere because no engine speculates on load
/// values).
fn must_forbid(pattern: &str, fenced: bool, model: ConsistencyModel) -> bool {
    if fenced || pattern == "load-buffering" {
        return true;
    }
    match pattern {
        "message-passing" => model != ConsistencyModel::Rmo,
        "store-buffering" | "iriw" => model == ConsistencyModel::Sc,
        _ => true,
    }
}

fn cmd_report(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence report <name> [common options]\n\n\
             Re-renders a stored sweep's tables from the experiment store without\n\
             running any simulation. With no <name>, lists the stored sweeps."
        );
        return Ok(0);
    }
    let store =
        cli.open_store()?.ok_or_else(|| "report needs a store (omit --no-store)".to_string())?;
    let Some(name) = cli.positional.first() else {
        let names = store.manifest_names().map_err(|e| e.to_string())?;
        if names.is_empty() {
            println!("store {} has no sweeps yet", store.root().display());
        } else {
            println!("stored sweeps in {}:", store.root().display());
            for name in names {
                println!("  {name}");
            }
        }
        return Ok(0);
    };
    let manifest = store
        .read_manifest(name)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no sweep named {name:?} in {}", store.root().display()))?;
    let rows = store.resolve(&manifest)?;
    println!(
        "{} ({} instructions/core, seed {})",
        manifest.figure, manifest.instructions_per_core, manifest.seed
    );
    let mut table = ColumnTable::new(
        ["workload", "config", "cycles", "runtime % of first", "breakdown"]
            .into_iter()
            .map(str::to_string),
    );
    for (workload, runs) in &rows {
        let baseline = &runs[0];
        for run in runs {
            table.push_row([
                workload.clone(),
                run.config.clone(),
                run.cycles.to_string(),
                format!("{:.1}", run.normalized_runtime(baseline)),
                run.breakdown.to_string(),
            ]);
        }
    }
    println!("{table}");
    Ok(0)
}

fn cmd_diff(cli: &Cli) -> Result<i32, String> {
    if cli.help {
        println!(
            "usage: ifence diff <name-a> <name-b> [--threshold PCT] [--against DIR] [common options]\n\n\
             Compares two stored sweeps cell by cell. <name-b> resolves in the store\n\
             given by --against (default: the same store as <name-a>). Cells whose\n\
             cycle delta or breakdown shift exceeds the threshold (default 2%) are\n\
             flagged; flagged slowdowns exit 2 — a perf-regression gate."
        );
        return Ok(0);
    }
    let [name_a, name_b] = cli.positional.as_slice() else {
        return Err("diff needs two sweep names (see ifence diff --help)".to_string());
    };
    let store_a =
        cli.open_store()?.ok_or_else(|| "diff needs a store (omit --no-store)".to_string())?;
    // Without --against both sides resolve in the already-open store; only a
    // genuinely different directory is opened (and indexed) a second time.
    let against = match &cli.against {
        Some(dir) => Some(
            ExperimentStore::open(dir)
                .map_err(|e| format!("cannot open --against store {}: {e}", dir.display()))?,
        ),
        None => None,
    };
    let store_b = against.as_ref().unwrap_or(&store_a);
    let manifest_a = store_a
        .read_manifest(name_a)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no sweep named {name_a:?} in {}", store_a.root().display()))?;
    let manifest_b = store_b
        .read_manifest(name_b)
        .map_err(|e| e.to_string())?
        .ok_or_else(|| format!("no sweep named {name_b:?} in {}", store_b.root().display()))?;
    let threshold = cli.threshold.unwrap_or(2.0);
    let report = diff_sweeps(&store_a, &manifest_a, store_b, &manifest_b, threshold)?;
    println!("{}", report.table());
    for unmatched in &report.unmatched {
        println!("unmatched: {unmatched}");
    }
    println!(
        "{} cell(s) compared, {} flagged beyond {:.1}%, {} regression(s)",
        report.rows.len(),
        report.flagged(),
        threshold,
        report.regressions()
    );
    Ok(if report.regressions() > 0 { 2 } else { 0 })
}
