//! InvisiFence reproduction — umbrella crate.
//!
//! This crate re-exports the public API of the workspace so examples,
//! integration tests and downstream users can depend on a single crate:
//!
//! * [`types`] — addresses, instructions, consistency models, machine
//!   configuration (Figure 6).
//! * [`stats`] — cycle-breakdown accounting and result tables.
//! * [`mem`] — caches with speculative bits, store buffers, MSHRs.
//! * [`coherence`] — the directory-MESI fabric and torus timing model.
//! * [`cpu`] — the out-of-order core model and the ordering-engine trait.
//! * [`consistency`] — conventional SC / TSO / RMO engines.
//! * [`invisifence`] — the paper's contribution: selective and continuous
//!   speculation, commit-on-violate, and the ASO baseline.
//! * [`workloads`] — synthetic workload presets and litmus tests.
//! * [`sim`] — the machine assembly, experiment runner and figure drivers.
//! * [`store`] — the content-addressed experiment store and result cache
//!   behind the `ifence` CLI (resumable sweeps, warm re-runs, stored-sweep
//!   reports and diffs).
//!
//! # Quick start
//!
//! ```
//! use invisifence_repro::prelude::*;
//!
//! // Run a small workload under conventional RMO and under InvisiFence-RMO.
//! // Traces stream through bounded replay windows; nothing is materialized.
//! let params = ExperimentParams::quick_test();
//! let workload = Workload::from(WorkloadSpec::uniform("demo"));
//! let conventional =
//!     run_experiment(EngineKind::Conventional(ConsistencyModel::Rmo), &workload, &params);
//! let invisi =
//!     run_experiment(EngineKind::InvisiSelective(ConsistencyModel::Rmo), &workload, &params);
//! assert!(conventional.cycles > 0 && invisi.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ifence_coherence as coherence;
pub use ifence_consistency as consistency;
pub use ifence_cpu as cpu;
pub use ifence_mem as mem;
pub use ifence_sim as sim;
pub use ifence_stats as stats;
pub use ifence_store as store;
pub use ifence_types as types;
pub use ifence_workloads as workloads;
pub use invisifence;

/// The most commonly used items, re-exported for convenience.
pub mod prelude {
    pub use ifence_sim::figures::FigureContext;
    pub use ifence_sim::{cell_key, run_experiment, run_litmus, ExperimentParams, Machine};
    pub use ifence_stats::{ColumnTable, CycleBreakdown, RunSummary};
    pub use ifence_store::{CacheStats, CellKey, ExperimentStore, JsonCodec, SweepManifest};
    pub use ifence_types::{
        Addr, BlockAddr, BoxedSource, ConsistencyModel, CoreId, CycleClass, EmptySource,
        EngineKind, Instruction, InstructionSource, MachineConfig, Program, ProgramSource,
    };
    pub use ifence_workloads::{
        presets, GeneratorSource, LitmusTest, PhasedWorkload, Workload, WorkloadPhase, WorkloadSpec,
    };
    pub use invisifence::build_engine;
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_exposes_core_types() {
        use crate::prelude::*;
        let cfg = MachineConfig::paper_baseline();
        assert_eq!(cfg.cores, 16);
        assert_eq!(ConsistencyModel::ALL.len(), 3);
        assert_eq!(presets::all_presets().len(), 7);
    }
}
