//! Lock-contention scenario: sweep critical-section frequency and lock counts
//! and observe how conventional RMO's fence/atomic stalls grow while
//! InvisiFence keeps ordering performance-transparent.
//!
//! This is the workload pattern the paper's introduction motivates: highly
//! tuned multithreaded software using fine-grained locking pays for memory
//! ordering at every acquire and release.
//!
//! ```text
//! cargo run --release --example lock_contention
//! ```

use invisifence_repro::prelude::*;

fn main() {
    let params = ExperimentParams { instructions_per_core: 4_000, ..Default::default() };

    let mut table = ColumnTable::new([
        "critical sections / 1k instr",
        "locks",
        "rmo cycles",
        "Invisi_rmo cycles",
        "rmo ordering %",
        "Invisi ordering %",
        "speedup",
    ]);

    for (cs_rate, locks) in [(0.002, 1024), (0.006, 512), (0.012, 256), (0.024, 64)] {
        let mut spec = WorkloadSpec::uniform("lock-sweep");
        spec.critical_section_rate = cs_rate;
        spec.locks = locks;
        spec.shared_fraction = 0.3;
        let workload = Workload::from(spec);

        let rmo =
            run_experiment(EngineKind::Conventional(ConsistencyModel::Rmo), &workload, &params);
        let invisi =
            run_experiment(EngineKind::InvisiSelective(ConsistencyModel::Rmo), &workload, &params);

        let ordering = |s: &RunSummary| {
            100.0
                * (s.breakdown.fraction(CycleClass::SbFull)
                    + s.breakdown.fraction(CycleClass::SbDrain)
                    + s.breakdown.fraction(CycleClass::Violation))
        };
        table.push_row([
            format!("{:.1}", cs_rate * 1000.0),
            locks.to_string(),
            rmo.cycles.to_string(),
            invisi.cycles.to_string(),
            format!("{:.1}", ordering(&rmo)),
            format!("{:.1}", ordering(&invisi)),
            format!("{:.2}x", invisi.speedup_over(&rmo)),
        ]);
    }
    println!("{table}");
    println!("As synchronisation becomes more frequent, conventional RMO pays more and more");
    println!("store-buffer-drain stalls at fences and atomics; InvisiFence speculates past");
    println!("them and commits when the store buffer drains on its own.");
}
