//! Quick start: run one workload under a conventional consistency model and
//! under InvisiFence, and print the speedup and runtime breakdown.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use invisifence_repro::prelude::*;

fn main() {
    // A reduced-size experiment so the example finishes in a few seconds; use
    // `ExperimentParams::from_env()` (IFENCE_INSTRS=...) for larger runs.
    let params = ExperimentParams { instructions_per_core: 5_000, ..Default::default() };

    let workload = Workload::from(presets::apache());
    println!("Workload: {} — {}", workload.name(), workload.description());
    println!(
        "Machine:  {} cores, {}-entry ROB, {} KB L1, InvisiFence adds {} bytes of state\n",
        MachineConfig::paper_baseline().cores,
        MachineConfig::paper_baseline().core.rob_size,
        MachineConfig::paper_baseline().l1.size_bytes / 1024,
        MachineConfig::with_engine(EngineKind::InvisiSelective(ConsistencyModel::Rmo))
            .speculative_state_bytes(),
    );

    let configs = [
        EngineKind::Conventional(ConsistencyModel::Sc),
        EngineKind::Conventional(ConsistencyModel::Tso),
        EngineKind::Conventional(ConsistencyModel::Rmo),
        EngineKind::InvisiSelective(ConsistencyModel::Sc),
        EngineKind::InvisiSelective(ConsistencyModel::Rmo),
    ];

    let mut table = ColumnTable::new([
        "config",
        "cycles",
        "speedup vs sc",
        "ordering stalls %",
        "% time speculating",
    ]);
    let mut baseline: Option<RunSummary> = None;
    for engine in configs {
        let summary = run_experiment(engine, &workload, &params);
        let base = baseline.get_or_insert_with(|| summary.clone());
        let ordering = 100.0
            * (summary.breakdown.fraction(CycleClass::SbFull)
                + summary.breakdown.fraction(CycleClass::SbDrain)
                + summary.breakdown.fraction(CycleClass::Violation));
        table.push_row([
            summary.config.clone(),
            summary.cycles.to_string(),
            format!("{:.2}x", summary.speedup_over(base)),
            format!("{ordering:.1}"),
            format!("{:.1}", 100.0 * summary.speculation_fraction),
        ]);
    }
    println!("{table}");
    println!("Lower ordering-stall percentages mean the memory model is closer to");
    println!("performance-transparent; InvisiFence removes the SB drain / SB full stalls");
    println!("that conventional implementations pay at fences, atomics and store misses.");
}
