//! Litmus tests: demonstrate that InvisiFence's speculation never becomes
//! architecturally visible — SC enforced through speculation observes exactly
//! the outcomes conventional SC allows.
//!
//! ```text
//! cargo run --release --example litmus
//! ```

use invisifence_repro::prelude::*;

fn main() {
    let iterations = 40;
    let configs = [
        EngineKind::Conventional(ConsistencyModel::Sc),
        EngineKind::Conventional(ConsistencyModel::Tso),
        EngineKind::Conventional(ConsistencyModel::Rmo),
        EngineKind::InvisiSelective(ConsistencyModel::Sc),
        EngineKind::InvisiContinuous { commit_on_violate: false },
    ];

    let mut table = ColumnTable::new([
        "config",
        "message-passing (plain)",
        "message-passing (fenced)",
        "store-buffering (plain)",
        "store-buffering (fenced)",
    ]);

    for engine in configs {
        let mp_plain =
            run_litmus(engine, &LitmusTest::message_passing(iterations, false), 40_000_000);
        let mp_fenced =
            run_litmus(engine, &LitmusTest::message_passing(iterations, true), 40_000_000);
        let sb_plain =
            run_litmus(engine, &LitmusTest::store_buffering(iterations, false), 40_000_000);
        let sb_fenced =
            run_litmus(engine, &LitmusTest::store_buffering(iterations, true), 40_000_000);
        let cell = |n: usize| {
            if n == 0 {
                format!("0 / {iterations} forbidden")
            } else {
                format!("{n} / {iterations} forbidden")
            }
        };
        table.push_row([
            engine.label(),
            cell(mp_plain),
            cell(mp_fenced),
            cell(sb_plain),
            cell(sb_fenced),
        ]);
    }

    println!("{table}");
    println!("Forbidden outcomes are the ones sequential consistency rules out");
    println!("(r1==1 && r2==0 for message passing, r0==0 && r1==0 for store buffering).");
    println!("SC-enforcing configurations — including the speculative ones — must show 0;");
    println!("relaxed models may legitimately show non-zero counts in the *plain* columns,");
    println!("and must show 0 again once fences are inserted.");
}
