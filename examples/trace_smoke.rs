//! Telemetry smoke: the trace layer's two invariants at CI scale.
//!
//! 1. **Tracing is invisible** — a traced run's [`MachineResult`] is
//!    byte-identical (structurally and re-encoded) to the untraced run, on
//!    both the serial batched kernel and the epoch-parallel kernel.
//! 2. **The stream is kernel-invariant** — the JSONL trace exported through
//!    the store codec is byte-identical across all nine kernel modes
//!    (dense / event-driven / batched / leap / epoch-parallel at 1, 2 and 4
//!    threads / leap-epoch at 2 and 4 threads).
//!
//! ```text
//! IFENCE_TRACE=1 cargo run --release --example trace_smoke
//! ```
//!
//! The `IFENCE_TRACE=1` in the invocation is the CI leg's point: when the
//! variable is set, the example additionally asserts that the *environment*
//! path collects events on a machine whose config never asked for tracing —
//! the same override the `ifence` CLI documents. Without the variable the
//! example still runs the two invariants above.

use ifence_sim::{Machine, MachineResult};
use ifence_stats::MachineTrace;
use ifence_store::{trace_to_jsonl, JsonCodec};
use ifence_types::{ConsistencyModel, EngineKind, MachineConfig};
use ifence_workloads::presets;

const MODES: [(&str, bool, bool, bool, usize); 9] = [
    // (label, dense_kernel, batch_kernel, leap_kernel, machine_threads)
    ("dense", true, false, false, 1),
    ("event", false, false, false, 1),
    ("batched", false, true, false, 1),
    ("leap", false, true, true, 1),
    ("epoch-1", false, true, false, 1),
    ("epoch-2", false, true, false, 2),
    ("epoch-4", false, true, false, 4),
    ("leap-epoch-2", false, true, true, 2),
    ("leap-epoch-4", false, true, true, 4),
];

fn run(
    engine: EngineKind,
    mode: (&str, bool, bool, bool, usize),
    trace: bool,
    instrs: usize,
) -> (MachineResult, MachineTrace) {
    let (_, dense, batch, leap, threads) = mode;
    let mut cfg = MachineConfig::small_test(engine);
    cfg.dense_kernel = dense;
    cfg.batch_kernel = batch;
    cfg.leap_kernel = leap;
    cfg.machine_threads = threads;
    cfg.trace = trace;
    let programs = presets::apache().generate(cfg.cores, instrs, cfg.seed);
    Machine::new(cfg, programs).expect("valid config").into_result_with_trace(u64::MAX)
}

fn main() {
    let instrs = std::env::var("IFENCE_INSTRS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_500);
    let engine = EngineKind::InvisiSelective(ConsistencyModel::Sc);
    let env_trace_on = matches!(std::env::var("IFENCE_TRACE").as_deref(), Ok("1"));

    // 1. Tracing must not change a single simulated result — serial batched
    // and epoch-parallel both. (Under IFENCE_TRACE=1 the "untraced" runs are
    // env-traced too, which only strengthens the check: the comparison is
    // then traced-vs-traced against the explicitly traced config.)
    let (untraced, env_stream) = run(engine, MODES[2], false, instrs);
    assert!(untraced.finished, "smoke workload must finish");
    if env_trace_on {
        assert!(
            !env_stream.events.is_empty(),
            "IFENCE_TRACE=1 must enable collection without a config change"
        );
    } else {
        assert!(env_stream.events.is_empty(), "untraced runs must collect nothing");
    }
    let (traced, reference) = run(engine, MODES[2], true, instrs);
    assert_eq!(untraced, traced, "tracing changed the simulated result (serial batched)");
    assert_eq!(
        untraced.to_json().encode(),
        traced.to_json().encode(),
        "tracing changed the encoded result"
    );
    let (epoch_untraced, _) = run(engine, MODES[6], false, instrs);
    let (epoch_traced, _) = run(engine, MODES[6], true, instrs);
    assert_eq!(untraced, epoch_untraced, "epoch kernel diverged untraced");
    assert_eq!(untraced, epoch_traced, "tracing changed the simulated result (epoch kernel)");
    assert_eq!(reference.dropped, 0, "the smoke scale must trace losslessly");
    assert!(!reference.events.is_empty(), "traced smoke run collected no events");

    // 2. The JSONL stream is byte-identical across all nine kernel modes.
    let reference_jsonl = trace_to_jsonl(&reference);
    for mode in MODES {
        let (result, stream) = run(engine, mode, true, instrs);
        assert_eq!(untraced, result, "{} traced result diverges", mode.0);
        assert_eq!(
            trace_to_jsonl(&stream),
            reference_jsonl,
            "{} trace stream diverges from the batched reference",
            mode.0
        );
    }

    println!(
        "trace smoke passed: byte-identical results traced/untraced (serial + epoch), \
         {} event(s) byte-identical across all {} kernel modes{}",
        reference.events.len(),
        MODES.len(),
        if env_trace_on { ", env override collects" } else { "" }
    );
}
