//! Long-trace smoke test: run one workload on the paper machine with a
//! trace budget that would be hostile to the materialized path (CI uses
//! `IFENCE_INSTRS=1000000`, i.e. 16 million instructions machine-wide), and
//! assert that per-core trace state stayed bounded by the replay window —
//! not the trace length.
//!
//! Under the old `Vec<Instruction>`-per-core design this run would
//! materialize all 16 million instructions before simulation began; with
//! streaming sources, generation overlaps simulation and the resident
//! high-water mark stays O(ROB + speculation depth).
//!
//! ```text
//! IFENCE_INSTRS=1000000 cargo run --release --example long_trace_smoke
//! ```

use invisifence_repro::prelude::*;
use std::time::Instant;

fn main() {
    let params = ExperimentParams::from_env();
    let workload = std::env::var("IFENCE_WORKLOADS")
        .ok()
        .and_then(|names| names.split(',').next().and_then(|n| presets::workload_by_name(n.trim())))
        .unwrap_or_else(|| presets::apache().into());
    let engine = EngineKind::InvisiSelective(ConsistencyModel::Rmo);

    let mut cfg = MachineConfig::with_engine(engine);
    cfg.seed = params.seed;
    cfg.dense_kernel = params.dense_kernel;
    let cores = cfg.cores;
    println!(
        "long-trace smoke: {} on {}, {} instructions/core x {} cores (seed {})",
        engine.label(),
        workload.name(),
        params.instructions_per_core,
        cores,
        params.seed
    );

    let sources = workload.sources(cores, params.instructions_per_core, params.seed);
    let mut machine = Machine::from_sources(cfg, sources).expect("valid config");
    let start = Instant::now();
    let result = machine.run(params.max_cycles);
    let elapsed = start.elapsed().as_secs_f64();

    assert!(!result.deadlocked, "deadlock: {:?}", result.deadlock_diagnostic);
    assert!(result.finished, "run hit the cycle limit ({} cycles)", result.cycles);
    let retired: u64 = result.per_core.iter().map(|c| c.counters.instructions_retired).sum();
    assert!(
        retired >= (params.instructions_per_core * cores) as u64,
        "not all instructions retired"
    );

    // The point of the exercise: trace state is bounded by the replay window
    // (ROB depth + speculation depth + one generation structure), never by
    // the trace length. 10% of the trace is a deliberately loose ceiling —
    // in practice the window is a few hundred instructions.
    let window = machine.max_trace_resident();
    let budget = (params.instructions_per_core / 10).max(4_096);
    assert!(
        window <= budget,
        "resident window {window} exceeded the O(window) bound {budget} — \
         trace state is scaling with trace length again"
    );

    println!(
        "finished: {} cycles, {} instructions retired, {:.1}s wall clock",
        result.cycles, retired, elapsed
    );
    println!(
        "max resident trace window: {window} instructions/core (trace length {}, bound {budget})",
        params.instructions_per_core
    );
}
