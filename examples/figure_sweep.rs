//! Regenerates the paper's main result figures at a configurable scale and
//! prints them as tables (the benchmark harness in `crates/bench` does the
//! same under `cargo bench`, one target per figure).
//!
//! ```text
//! IFENCE_INSTRS=20000 cargo run --release --example figure_sweep
//! ```

use ifence_sim::figures;
use ifence_sim::ExperimentParams;
use ifence_workloads::presets;

fn main() {
    let mut params = ExperimentParams::from_env();
    if std::env::var("IFENCE_INSTRS").is_err() {
        // Keep the default example run short; the bench harness uses more.
        params.instructions_per_core = 4_000;
    }
    // The full runnable suite, including the phased ServerSwings scenario
    // that only the streaming trace path can express.
    let workloads = presets::all_workloads();

    println!("== Figure 1: ordering stalls in conventional implementations ==");
    let (_, table1) = figures::figure1(&workloads, &params);
    println!("{table1}");

    println!("== Figures 8-10: conventional vs InvisiFence-Selective ==");
    let data = figures::selective_matrix(&workloads, &params);
    println!("-- Figure 8: speedup over conventional SC --");
    println!("{}", figures::figure8(&data));
    println!("-- Figure 9: runtime breakdown (normalised to SC) --");
    println!("{}", figures::figure9(&data));
    println!("-- Figure 10: % of cycles spent speculating --");
    println!("{}", figures::figure10(&data));

    println!("== Figure 11: comparison with ASO ==");
    let (_, table11) = figures::figure11(&workloads, &params);
    println!("{table11}");

    println!("== Figure 12: continuous speculation and commit-on-violate ==");
    let (_, table12) = figures::figure12(&workloads, &params);
    println!("{table12}");
}
