//! Phase-profiler smoke: asserts that the kernel phase profiler
//!
//! 1. changes **no simulated result** — a run with profiling off and a run
//!    with profiling force-enabled produce byte-identical [`MachineResult`]s
//!    (the profiler observes host wall clock only);
//! 2. actually measures — with profiling on, every serial-kernel phase
//!    (core stepping, fabric stepping, delivery routing) accumulates
//!    non-zero time, and the phase total stays within the measured section's
//!    wall clock (each phase is a disjoint slice of it).
//!
//! ```text
//! IFENCE_PROFILE=1 cargo run --release --example profile_smoke
//! ```
//!
//! The `IFENCE_PROFILE=1` in the invocation is the CI leg's point: the env
//! path and the programmatic path must agree. The example force-sets the
//! flag itself, so it also passes without the variable.

use ifence_sim::Machine;
use ifence_stats::{Phase, PhaseProfile};
use ifence_types::{ConsistencyModel, EngineKind, MachineConfig};
use ifence_workloads::presets;
use std::time::Instant;

fn run_once(threads: usize, leap: bool) -> ifence_sim::MachineResult {
    let mut cfg = MachineConfig::with_engine(EngineKind::Conventional(ConsistencyModel::Sc));
    cfg.machine_threads = threads;
    // Leaping routes even a serial run through the epoch loop (its merge
    // phase would be non-zero), so the serial-kernel assertions below pin it
    // off and the leap section pins it on.
    cfg.leap_kernel = leap;
    let instrs = std::env::var("IFENCE_INSTRS").ok().and_then(|v| v.parse().ok()).unwrap_or(3_000);
    let programs = presets::apache().generate(cfg.cores, instrs, cfg.seed);
    Machine::new(cfg, programs).expect("valid config").into_result(u64::MAX)
}

fn main() {
    let profile = PhaseProfile::global();

    // 1. Profiling must not change a single simulated result. (If CI runs
    // this with IFENCE_PROFILE=1 the "off" run needs an explicit disable —
    // which is exactly the cross-check the env path needs anyway.)
    profile.set_enabled(false);
    let off = run_once(1, false);
    profile.set_enabled(true);
    let start = profile.snapshot();
    let wall_start = Instant::now();
    let on = run_once(1, false);
    let wall_ms = wall_start.elapsed().as_secs_f64() * 1e3;
    let delta = profile.snapshot().delta(&start);
    assert_eq!(off, on, "profiling must be invisible to every simulated result");

    // 2. The serial kernel's phases all accumulated, and their sum does not
    // exceed the section's wall clock (phases are disjoint slices of it;
    // machine construction and finalisation sit outside every phase).
    for phase in [Phase::CoreStep, Phase::FabricStep, Phase::DeliveryRouting] {
        assert!(delta.nanos(phase) > 0, "phase {} measured nothing in a serial run", phase.label());
        assert!(delta.count(phase) > 0, "phase {} recorded no intervals", phase.label());
    }
    assert_eq!(delta.nanos(Phase::Merge), 0, "the serial kernels have no merge phase");
    let total_ms = delta.total_nanos() as f64 / 1e6;
    assert!(
        total_ms <= wall_ms,
        "phase total {total_ms:.1}ms exceeds the section wall clock {wall_ms:.1}ms"
    );
    assert!(
        total_ms >= 0.05 * wall_ms,
        "phase total {total_ms:.1}ms is implausibly small next to {wall_ms:.1}ms of wall clock"
    );
    // The residual — wall clock no phase claimed (machine construction,
    // finalisation) — is what `profile_other_ms` records in bench
    // trajectories; it must be the non-negative remainder of the two
    // quantities asserted above.
    let other_ms = (wall_ms - total_ms).max(0.0);

    // 3. The epoch-parallel kernel's merge phase accumulates (and stays
    // byte-identical while profiled, like every kernel).
    let epoch_start = profile.snapshot();
    let epoch = run_once(2, false);
    let epoch_delta = profile.snapshot().delta(&epoch_start);
    assert_eq!(off, epoch, "the profiled epoch kernel must stay byte-identical");
    assert!(
        epoch_delta.count(Phase::Merge) > 0,
        "the epoch kernel's merge phase recorded no intervals"
    );

    // 4. Leap execution stays byte-identical under the profiler, and routes
    // through the epoch machinery even serially (so its merge phase counts).
    let leap_start = profile.snapshot();
    let leap = run_once(1, true);
    let leap_delta = profile.snapshot().delta(&leap_start);
    assert_eq!(off, leap, "the profiled leap kernel must stay byte-identical");
    assert!(
        leap_delta.count(Phase::Merge) > 0,
        "the serial leap kernel routes through the epoch merge; it must be measured"
    );

    println!("{}", delta.report());
    println!(
        "profile smoke passed: byte-identical on/off, all serial phases non-zero, \
         phase total {total_ms:.1}ms within {wall_ms:.1}ms wall clock \
         ({other_ms:.1}ms residual outside every phase), epoch and leap merges measured"
    );
}
