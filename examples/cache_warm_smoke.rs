//! Cache-warm smoke: runs a reduced figure sweep twice through a fresh
//! experiment store and asserts the second run is **100% cache hits** and at
//! least **5× faster** in wall clock — the CI gate for the result cache.
//!
//! ```text
//! cargo run --release --example cache_warm_smoke
//! ```
//!
//! The store lives in a per-process temporary directory (always cold at
//! start, removed on success), so the smoke measures the cache itself, not
//! leftover state.

use ifence_sim::figures::{run_all_figures, FigureContext};
use ifence_sim::ExperimentParams;
use ifence_store::ExperimentStore;
use ifence_workloads::presets;
use std::time::Instant;

fn main() {
    let mut params = ExperimentParams::quick_test();
    // A meaty enough cold run that the ≥5× wall-clock assertion is about
    // simulation cost, not timer noise.
    params.instructions_per_core =
        std::env::var("IFENCE_INSTRS").ok().and_then(|v| v.parse().ok()).unwrap_or(1_500);
    let workloads = presets::all_workloads();

    let root = std::env::temp_dir().join(format!("ifence-cache-warm-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let store = ExperimentStore::open(&root).expect("store opens");
    let ctx = FigureContext::with_store(&params, &store);

    let cold_start = Instant::now();
    let (cold_sections, cold_cache) = run_all_figures(&workloads, &ctx);
    let cold_elapsed = cold_start.elapsed();

    let warm_start = Instant::now();
    let (warm_sections, warm_cache) = run_all_figures(&workloads, &ctx);
    let warm_elapsed = warm_start.elapsed();

    println!(
        "cold: {} cells ({} simulated, {} intra-suite hits) in {:.1} ms",
        cold_cache.total(),
        cold_cache.misses,
        cold_cache.hits,
        1000.0 * cold_elapsed.as_secs_f64()
    );
    println!(
        "warm: {} cells ({} simulated, {} hits) in {:.1} ms",
        warm_cache.total(),
        warm_cache.misses,
        warm_cache.hits,
        1000.0 * warm_elapsed.as_secs_f64()
    );

    assert!(cold_cache.misses > 0, "cold run must simulate");
    assert_eq!(warm_cache.misses, 0, "warm run must be 100% cache hits");
    assert_eq!(warm_cache.hits, cold_cache.total(), "warm run covers the same cells");
    assert!(warm_cache.all_hits());

    for ((title, cold_table), (_, warm_table)) in cold_sections.iter().zip(&warm_sections) {
        assert_eq!(
            cold_table.to_string(),
            warm_table.to_string(),
            "{title}: warm table must be byte-identical"
        );
    }

    let speedup = cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9);
    println!("warm speedup: {speedup:.1}x");
    assert!(
        speedup >= 5.0,
        "warm re-run must be at least 5x faster (got {speedup:.1}x: cold {:?}, warm {:?})",
        cold_elapsed,
        warm_elapsed
    );

    std::fs::remove_dir_all(&root).expect("cleanup");
    println!("cache-warm smoke passed");
}
